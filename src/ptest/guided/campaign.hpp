// GuidedCampaign — coverage-guided refinement of PFA test plans across
// epochs.
//
// The paper's Algorithm 1 samples patterns from a *static* PFA; §V
// concedes fault coverage was never verified and asks how the
// probability distributions influence generation.  This module closes
// the loop the paper left open:
//
//   epoch e:  run a batch of sessions off the current compiled plan
//             -> fold structural coverage, trace fingerprints, and bug
//                yield into the CoverageCorpus
//             -> PlanRefiner re-weights the distributions toward the
//                still-uncovered transitions (optionally blended with a
//                TraceEstimator bigram law learned from the batch's own
//                patterns)
//             -> recompile through the ordinary compile/execute split
//   stop on:  oracle fire (the seeded bug was found), the epoch budget,
//             or a plateau in the coverage-gain series — detected by an
//             offline changepoint scan in the spirit of conformal
//             changepoint localization (Hore & Ramdas): locate the most
//             likely mean-shift in the gain series and stop once the
//             post-change segment is long and flat enough.
//
// Determinism: a guided run is a pure function of (config.seed, options,
// seed corpus).  Epoch batches execute on a WorkerPool exactly like
// Campaign rounds — session seeds derive from the global run index
// alone and results merge in run order — so `jobs` can never change the
// outcome.  A corpus saved mid-campaign resumes to the bit-identical
// continuation of the uninterrupted run: run indices continue from
// corpus.sessions(), epochs count globally from corpus.epochs(), and
// the corpus records which transitions each epoch first covered — just
// enough to replay the refinement chain (each epoch refines the
// previous refined plan) before the first resumed batch.  The one
// exception is estimator_blend > 0 (off by default): learned bigram
// counts live in-process only, so a blended resume is still a pure
// function of (seed, jobs, corpus) but its blend restarts at the
// process boundary.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ptest/core/campaign.hpp"
#include "ptest/guided/corpus.hpp"
#include "ptest/guided/refiner.hpp"

namespace ptest::guided {

struct GuidedOptions {
  /// Refinement epochs at most (>= 1); the budget stop.
  std::size_t max_epochs = 8;
  /// Sessions per epoch batch (>= 1).  Total session budget is therefore
  /// at most max_epochs * sessions_per_epoch.
  std::size_t sessions_per_epoch = 8;
  /// Worker threads per epoch batch (Campaign semantics: 1 = caller
  /// thread, 0 = one per hardware thread; never changes results).
  std::size_t jobs = 1;
  /// Re-weighting policy (exploration share, estimator blend, floor).
  RefinerOptions refiner;
  /// Laplace smoothing of the in-run TraceEstimator feeding the blend
  /// (only consulted when refiner.estimator_blend > 0).
  double estimator_smoothing = 1.0;
  /// Plateau stop: the post-changepoint segment of the coverage-gain
  /// series must span at least `plateau_window` epochs with mean gain
  /// below `plateau_epsilon`.  window = 0 disables the plateau stop.
  std::size_t plateau_window = 3;
  double plateau_epsilon = 1e-3;
  /// Stop as soon as a counted detection lands (sessions-to-first-bug
  /// mode).  Off = spend the full epoch budget mapping coverage.
  bool stop_on_bug = true;
  /// Which detections count (scenario oracles route through this);
  /// nullptr = any detected bug.
  std::function<bool(const core::BugReport&)> counts_as_bug;
  /// n-gram window of the coverage tracker.
  std::size_t ngram = 3;
};

enum class StopReason : std::uint8_t {
  kBugFound = 0,
  kEpochBudget,
  kCoveragePlateau,
};
[[nodiscard]] const char* to_string(StopReason reason) noexcept;

/// Per-epoch accounting mirrored into the corpus (EpochRecord) and the
/// result's trajectory.
struct GuidedEpoch {
  std::size_t index = 0;            ///< epoch ordinal within this run
  std::size_t sessions = 0;
  std::size_t detections = 0;       ///< counted detections in this epoch
  std::uint64_t new_transitions = 0;
  std::uint64_t new_fingerprints = 0;
  double transition_coverage = 0.0;  ///< cumulative (corpus-seeded) value
  double coverage_gain = 0.0;
};

struct GuidedResult {
  /// Aggregate over every executed session, in ordinary campaign shape
  /// (one arm; metrics carry epochs / plan_refinements / pfa_* coverage).
  core::CampaignResult campaign;
  std::vector<GuidedEpoch> epochs;
  StopReason stop_reason = StopReason::kEpochBudget;
  /// Plans recompiled from a refined spec (= epochs run - 1, unless the
  /// run stopped during epoch 0).
  std::size_t refinements = 0;
  /// 1-based ordinal, within this run, of the first session whose report
  /// counted; the guided-vs-static bench's headline number.
  std::optional<std::size_t> sessions_to_first_bug;
  /// Final cumulative structural coverage (corpus included).
  pattern::CoverageReport coverage;
};

class GuidedCampaign {
 public:
  /// `corpus` seeds coverage/fingerprints from an earlier invocation
  /// (pass {} to start cold); after run() it holds the accumulated
  /// state, retrievable via corpus() for saving.
  GuidedCampaign(core::PtestConfig config, core::WorkloadSetup setup,
                 GuidedOptions options = {}, CoverageCorpus corpus = {});

  [[nodiscard]] GuidedResult run();

  /// The corpus after (or before) run() — save this to resume later.
  [[nodiscard]] const CoverageCorpus& corpus() const noexcept {
    return corpus_;
  }

  /// Guided counterpart of Campaign::run_scenario: runs the named
  /// registry scenario under guidance, wiring its BugOracle into
  /// counts_as_bug.  A corpus labeled for a different scenario is
  /// rejected (clean Result error, like every other misuse here).
  [[nodiscard]] static support::Result<GuidedResult, std::string>
  run_scenario(std::string_view name, GuidedOptions options = {},
               CoverageCorpus corpus = {},
               std::optional<std::uint64_t> seed_override = {},
               CoverageCorpus* corpus_out = nullptr);

 private:
  core::PtestConfig config_;
  core::WorkloadSetup setup_;
  GuidedOptions options_;
  CoverageCorpus corpus_;
};

/// Exposed for tests: the plateau rule over a coverage-gain series.
/// Offline changepoint scan (maximize the scaled mean-shift statistic
/// sqrt(tau (n - tau) / n) |mean_pre - mean_post|) plus the direct rule
/// "the last `window` gains are all below epsilon".
[[nodiscard]] bool coverage_plateaued(const std::vector<double>& gains,
                                      std::size_t window, double epsilon);

}  // namespace ptest::guided
