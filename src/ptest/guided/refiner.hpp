// PlanRefiner — re-weights a compiled plan's distributions toward
// uncovered PFA transitions.
//
// Algorithm 1 samples from a PFA whose probabilities are fixed up front;
// the paper's §V leaves open "the influence of probability distributions
// on the generation of test patterns" and never verifies fault coverage.
// The refiner is the feedback half of that loop: given what a campaign
// has already covered (pattern::CoverageTracker / CoverageCorpus), it
// produces a DistributionSpec whose per-state weights shift an
// exploration share of each state's probability mass onto that state's
// still-uncovered outgoing edges:
//
//   w(s, a) = (1 - e) * blend(s, a) + [uncovered(s, a)] * e / U(s)
//
// where e = exploration_share, U(s) = number of uncovered edges at s,
// and blend(s, a) mixes the plan's current probability with an optional
// learned bigram spec (pfa::TraceEstimator output) by estimator_blend.
// States with no uncovered edges keep their current distribution
// verbatim.  A small floor keeps every edge samplable, and the PFA
// constructor's per-state normalization (Eq. 1) restores probabilities.
//
// refine() is a pure function of (plan, covered set, options): guided
// campaigns stay bit-deterministic because identical corpora produce
// identical refined specs — the property the corpus round-trip test
// pins.
#pragma once

#include <set>
#include <utility>

#include "ptest/core/test_plan.hpp"
#include "ptest/pfa/distribution.hpp"

namespace ptest::guided {

struct RefinerOptions {
  /// Share of each state's probability mass redistributed (uniformly)
  /// over that state's uncovered edges.  0 = no-op, must stay < 1.
  double exploration_share = 0.5;
  /// Blend factor toward `learned` bigram weights (0 = ignore learned,
  /// 1 = replace the plan's probabilities with the learned ones before
  /// the exploration shift is applied).
  double estimator_blend = 0.0;
  /// Minimum weight any edge keeps, as a fraction of its state's uniform
  /// share — refined plans may bias hard, but never starve an edge.
  double floor = 0.05;
};

class PlanRefiner {
 public:
  explicit PlanRefiner(const RefinerOptions& options);

  /// Builds the refined spec for `plan` given the covered (state,
  /// symbol) pairs.  `learned` (optional) supplies profiling-derived
  /// bigram weights to blend in — pass the TraceEstimator spec built
  /// from the campaign's own traces.
  [[nodiscard]] pfa::DistributionSpec refine(
      const core::CompiledTestPlan& plan,
      const std::set<std::pair<std::uint32_t, pfa::SymbolId>>& covered,
      const pfa::DistributionSpec* learned = nullptr) const;

 private:
  RefinerOptions options_;
};

}  // namespace ptest::guided
