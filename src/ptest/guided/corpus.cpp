#include "ptest/guided/corpus.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "ptest/support/json.hpp"

namespace ptest::guided {

namespace {

std::string hex64(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

/// Strict hex-to-u64; nullopt on anything but exactly 1..16 hex digits.
std::optional<std::uint64_t> parse_hex64(std::string_view text) {
  if (text.empty() || text.size() > 16) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      return std::nullopt;
    }
  }
  return value;
}

/// Non-negative integral number (corpus counters are counts; a double
/// that is not an exact integer marks a corrupt file).
std::optional<std::uint64_t> as_count(const support::JsonValue* value) {
  if (value == nullptr || !value->is_number()) return std::nullopt;
  const double number = value->number;
  // Range-check BEFORE the cast: float-to-integer conversion of a value
  // outside [0, 2^64) — including NaN — is undefined behavior, and a
  // hand-edited corpus can hold any number.  !(>= 0) also rejects NaN.
  if (!(number >= 0.0) || number >= 18446744073709551616.0) {
    return std::nullopt;
  }
  if (number != static_cast<double>(static_cast<std::uint64_t>(number))) {
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(number);
}

/// One [state, symbol] pair; nullopt on any shape or range violation.
std::optional<std::pair<std::uint32_t, pfa::SymbolId>> as_transition(
    const support::JsonValue& entry) {
  if (!entry.is_array() || entry.array.size() != 2) return std::nullopt;
  const auto state = as_count(&entry.array[0]);
  const auto symbol = as_count(&entry.array[1]);
  if (!state || !symbol || *state > ~std::uint32_t{0} ||
      *symbol > ~std::uint32_t{0}) {
    return std::nullopt;
  }
  return std::pair{static_cast<std::uint32_t>(*state),
                   static_cast<pfa::SymbolId>(*symbol)};
}

}  // namespace

std::optional<std::string> CoverageCorpus::insert_span(SessionSpan span) {
  if (span.sessions == 0) return std::nullopt;
  std::vector<SessionSpan> kept;
  kept.reserve(spans_.size() + 1);
  for (const SessionSpan& existing : spans_) {
    if (span.end() <= existing.base || span.base >= existing.end()) {
      kept.push_back(existing);  // disjoint
      continue;
    }
    if (span == existing) return std::nullopt;  // idempotent re-report
    if (span.base == existing.base && span.end() == existing.end()) {
      return std::string(
          "corpus: one session span reported with two detection counts");
    }
    if (span.base >= existing.base && span.end() <= existing.end()) {
      // Contained: the coarser existing record already accounts for it.
      return std::nullopt;
    }
    if (existing.base >= span.base && existing.end() <= span.end()) {
      continue;  // superseded by the coarser incoming span; drop it
    }
    return std::string("corpus: session spans overlap partially");
  }
  kept.push_back(span);
  std::sort(kept.begin(), kept.end(),
            [](const SessionSpan& a, const SessionSpan& b) {
              return a.base < b.base;
            });
  // Coalesce contiguous intervals so shard spans merge into the exact
  // span the uninterrupted run records (the canonical form to_json
  // round-trips).
  spans_.clear();
  for (const SessionSpan& entry : kept) {
    if (!spans_.empty() && spans_.back().end() == entry.base) {
      spans_.back().sessions += entry.sessions;
      spans_.back().detections += entry.detections;
    } else {
      spans_.push_back(entry);
    }
  }
  return std::nullopt;
}

void CoverageCorpus::recompute_totals() {
  sessions_ = 0;
  detections_ = 0;
  for (const EpochRecord& epoch : epochs_) {
    sessions_ += epoch.sessions;
    detections_ += epoch.detections;
  }
  for (const SessionSpan& span : spans_) {
    sessions_ += span.sessions;
    detections_ += span.detections;
  }
}

std::optional<std::string> CoverageCorpus::add_span(
    std::uint64_t base, std::uint64_t sessions, std::uint64_t detections) {
  const std::vector<SessionSpan> saved = spans_;
  if (auto error = insert_span({base, sessions, detections})) {
    spans_ = saved;
    return error;
  }
  recompute_totals();
  return std::nullopt;
}

std::optional<std::string> CoverageCorpus::merge(const CoverageCorpus& other) {
  if (!scenario_.empty() && !other.scenario_.empty() &&
      scenario_ != other.scenario_) {
    return "corpus: cannot merge scenario '" + other.scenario_ +
           "' into '" + scenario_ + "'";
  }
  if (seed_ && other.seed_ && *seed_ != *other.seed_) {
    return std::string(
        "corpus: cannot merge corpora built under different seeds");
  }
  // Epoch histories are refinement chains: two corpora can only be
  // views of the same campaign when one history is a prefix of the
  // other, and then the longer one subsumes the shorter.
  const bool ours_shorter = epochs_.size() <= other.epochs_.size();
  const std::vector<EpochRecord>& shorter =
      ours_shorter ? epochs_ : other.epochs_;
  const std::vector<EpochRecord>& longer =
      ours_shorter ? other.epochs_ : epochs_;
  if (!std::equal(shorter.begin(), shorter.end(), longer.begin())) {
    return std::string("corpus: cannot merge divergent epoch histories");
  }

  CoverageCorpus merged = *this;
  merged.epochs_ = longer;
  for (const SessionSpan& span : other.spans_) {
    if (auto error = merged.insert_span(span)) return error;
  }
  merged.transitions_.insert(other.transitions_.begin(),
                             other.transitions_.end());
  merged.fingerprints_.insert(other.fingerprints_.begin(),
                              other.fingerprints_.end());
  if (merged.scenario_.empty()) merged.scenario_ = other.scenario_;
  if (!merged.seed_) merged.seed_ = other.seed_;
  merged.recompute_totals();
  *this = std::move(merged);
  return std::nullopt;
}

std::string CoverageCorpus::to_json() const {
  support::JsonWriter out;
  out.begin_object();
  out.key("format_version").value(kFormatVersion);
  out.key("scenario").value(scenario_);
  // Hex like the fingerprints: seeds are full-width uint64 and a JSON
  // number (a double) would silently round them.
  if (seed_) out.key("seed").value(hex64(*seed_));
  out.key("sessions").value(sessions_);
  out.key("detections").value(detections_);
  // Only fleet-shard corpora carry spans; omitting the key when empty
  // keeps guided-campaign corpus files byte-identical to format 1
  // before spans existed.
  if (!spans_.empty()) {
    out.key("spans").begin_array();
    for (const SessionSpan& span : spans_) {
      out.begin_array();
      out.value(span.base);
      out.value(span.sessions);
      out.value(span.detections);
      out.end_array();
    }
    out.end_array();
  }
  out.key("transitions").begin_array();
  for (const auto& [state, symbol] : transitions_) {
    out.begin_array();
    out.value(static_cast<std::uint64_t>(state));
    out.value(static_cast<std::uint64_t>(symbol));
    out.end_array();
  }
  out.end_array();
  out.key("fingerprints").begin_array();
  for (const std::uint64_t hash : fingerprints_) {
    out.value(hex64(hash));
  }
  out.end_array();
  out.key("epochs").begin_array();
  for (const EpochRecord& epoch : epochs_) {
    out.begin_object();
    out.key("sessions").value(epoch.sessions);
    out.key("detections").value(epoch.detections);
    out.key("transitions").begin_array();
    for (const auto& [state, symbol] : epoch.transitions) {
      out.begin_array();
      out.value(static_cast<std::uint64_t>(state));
      out.value(static_cast<std::uint64_t>(symbol));
      out.end_array();
    }
    out.end_array();
    out.key("new_fingerprints").value(epoch.new_fingerprints);
    out.key("transition_coverage").value(epoch.transition_coverage);
    out.end_object();
  }
  out.end_array();
  out.end_object();
  return out.str();
}

support::Result<CoverageCorpus, std::string> CoverageCorpus::from_json(
    std::string_view text) {
  auto parsed = support::parse_json(text);
  if (!parsed.ok()) return "corpus: " + parsed.error();
  const support::JsonValue& root = parsed.value();
  if (!root.is_object()) return std::string("corpus: document is not an object");

  const auto version = as_count(root.find("format_version"));
  if (!version) return std::string("corpus: missing format_version");
  if (*version != kFormatVersion) {
    return "corpus: format_version " + std::to_string(*version) +
           " unsupported (this build reads version " +
           std::to_string(kFormatVersion) + ")";
  }

  CoverageCorpus corpus;
  if (const support::JsonValue* scenario = root.find("scenario")) {
    if (!scenario->is_string()) return std::string("corpus: scenario must be a string");
    corpus.scenario_ = scenario->string;
  }
  if (const support::JsonValue* seed = root.find("seed")) {
    if (!seed->is_string()) {
      return std::string("corpus: seed must be a hex string");
    }
    const auto value = parse_hex64(seed->string);
    if (!value) return "corpus: bad seed '" + seed->string + "'";
    corpus.seed_ = *value;
  }

  if (const support::JsonValue* spans = root.find("spans")) {
    if (!spans->is_array()) {
      return std::string("corpus: spans must be an array");
    }
    // Strict canonical form: sorted, disjoint, already coalesced —
    // exactly what to_json writes, so loading stays a byte round-trip.
    for (const support::JsonValue& entry : spans->array) {
      if (!entry.is_array() || entry.array.size() != 3) {
        return std::string(
            "corpus: span entries must be [base, sessions, detections]");
      }
      const auto base = as_count(&entry.array[0]);
      const auto span_sessions = as_count(&entry.array[1]);
      const auto span_detections = as_count(&entry.array[2]);
      if (!base || !span_sessions || !span_detections ||
          *span_sessions == 0 ||
          *span_sessions > ~std::uint64_t{0} - *base) {
        return std::string("corpus: malformed span entry");
      }
      if (*span_detections > *span_sessions) {
        return std::string("corpus: span detections exceed its sessions");
      }
      if (!corpus.spans_.empty() &&
          *base <= corpus.spans_.back().end()) {
        return std::string("corpus: spans must be sorted and coalesced");
      }
      corpus.spans_.push_back({*base, *span_sessions, *span_detections});
    }
  }

  const support::JsonValue* transitions = root.find("transitions");
  if (transitions == nullptr || !transitions->is_array()) {
    return std::string("corpus: missing transitions array");
  }
  for (const support::JsonValue& entry : transitions->array) {
    const auto transition = as_transition(entry);
    if (!transition) {
      return std::string("corpus: transition entries must be [state, symbol]");
    }
    corpus.transitions_.insert(*transition);
  }

  const support::JsonValue* fingerprints = root.find("fingerprints");
  if (fingerprints == nullptr || !fingerprints->is_array()) {
    return std::string("corpus: missing fingerprints array");
  }
  for (const support::JsonValue& entry : fingerprints->array) {
    if (!entry.is_string()) {
      return std::string("corpus: fingerprints must be hex strings");
    }
    const auto hash = parse_hex64(entry.string);
    if (!hash) return "corpus: bad fingerprint '" + entry.string + "'";
    corpus.fingerprints_.insert(*hash);
  }

  const support::JsonValue* epochs = root.find("epochs");
  if (epochs == nullptr || !epochs->is_array()) {
    return std::string("corpus: missing epochs array");
  }
  std::set<Transition> seen_in_epochs;
  for (const support::JsonValue& entry : epochs->array) {
    if (!entry.is_object()) return std::string("corpus: epochs must be objects");
    EpochRecord record;
    const auto sessions = as_count(entry.find("sessions"));
    const auto detections = as_count(entry.find("detections"));
    const auto new_fingerprints = as_count(entry.find("new_fingerprints"));
    const support::JsonValue* epoch_transitions = entry.find("transitions");
    const support::JsonValue* coverage = entry.find("transition_coverage");
    if (!sessions || !detections || !new_fingerprints ||
        epoch_transitions == nullptr || !epoch_transitions->is_array() ||
        coverage == nullptr || !coverage->is_number()) {
      return std::string("corpus: malformed epoch record");
    }
    record.sessions = *sessions;
    record.detections = *detections;
    record.new_fingerprints = *new_fingerprints;
    record.transition_coverage = coverage->number;
    for (const support::JsonValue& item : epoch_transitions->array) {
      const auto transition = as_transition(item);
      if (!transition) {
        return std::string(
            "corpus: epoch transition entries must be [state, symbol]");
      }
      // Each transition is "first covered" in exactly one epoch, and the
      // flat set is the union of the epoch lists plus any entries added
      // outside an epoch — a file violating either would replay a
      // different refinement chain than the one that produced it.
      if (!seen_in_epochs.insert(*transition).second) {
        return std::string("corpus: transition repeated across epochs");
      }
      if (!corpus.transitions_.contains(*transition)) {
        return std::string(
            "corpus: epoch transition missing from the covered set");
      }
      record.transitions.push_back(*transition);
    }
    corpus.add_epoch(record);
  }
  // The totals re-derive from the epoch and span records; the stored
  // ones double-check them so a hand-edited file that disagrees with
  // its own records is rejected.
  corpus.recompute_totals();
  const auto sessions = as_count(root.find("sessions"));
  const auto detections = as_count(root.find("detections"));
  if (!sessions || !detections) {
    return std::string("corpus: missing sessions/detections totals");
  }
  if (*sessions != corpus.sessions_ || *detections != corpus.detections_) {
    return std::string("corpus: totals disagree with the epoch records");
  }
  return corpus;
}

support::Result<CoverageCorpus, std::string> CoverageCorpus::load(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return "corpus: cannot read '" + path + "'";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto result = from_json(buffer.str());
  if (!result.ok()) return result.error() + " (" + path + ")";
  return result;
}

std::optional<std::string> CoverageCorpus::save(
    const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) return "corpus: cannot write '" + path + "'";
  out << to_json() << '\n';
  out.flush();
  if (!out.good()) return "corpus: write to '" + path + "' failed";
  return std::nullopt;
}

}  // namespace ptest::guided
