#include "ptest/guided/corpus.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "ptest/support/json.hpp"

namespace ptest::guided {

namespace {

std::string hex64(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

/// Strict hex-to-u64; nullopt on anything but exactly 1..16 hex digits.
std::optional<std::uint64_t> parse_hex64(std::string_view text) {
  if (text.empty() || text.size() > 16) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      return std::nullopt;
    }
  }
  return value;
}

/// Non-negative integral number (corpus counters are counts; a double
/// that is not an exact integer marks a corrupt file).
std::optional<std::uint64_t> as_count(const support::JsonValue* value) {
  if (value == nullptr || !value->is_number()) return std::nullopt;
  const double number = value->number;
  // Range-check BEFORE the cast: float-to-integer conversion of a value
  // outside [0, 2^64) — including NaN — is undefined behavior, and a
  // hand-edited corpus can hold any number.  !(>= 0) also rejects NaN.
  if (!(number >= 0.0) || number >= 18446744073709551616.0) {
    return std::nullopt;
  }
  if (number != static_cast<double>(static_cast<std::uint64_t>(number))) {
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(number);
}

/// One [state, symbol] pair; nullopt on any shape or range violation.
std::optional<std::pair<std::uint32_t, pfa::SymbolId>> as_transition(
    const support::JsonValue& entry) {
  if (!entry.is_array() || entry.array.size() != 2) return std::nullopt;
  const auto state = as_count(&entry.array[0]);
  const auto symbol = as_count(&entry.array[1]);
  if (!state || !symbol || *state > ~std::uint32_t{0} ||
      *symbol > ~std::uint32_t{0}) {
    return std::nullopt;
  }
  return std::pair{static_cast<std::uint32_t>(*state),
                   static_cast<pfa::SymbolId>(*symbol)};
}

}  // namespace

std::string CoverageCorpus::to_json() const {
  support::JsonWriter out;
  out.begin_object();
  out.key("format_version").value(kFormatVersion);
  out.key("scenario").value(scenario_);
  // Hex like the fingerprints: seeds are full-width uint64 and a JSON
  // number (a double) would silently round them.
  if (seed_) out.key("seed").value(hex64(*seed_));
  out.key("sessions").value(sessions_);
  out.key("detections").value(detections_);
  out.key("transitions").begin_array();
  for (const auto& [state, symbol] : transitions_) {
    out.begin_array();
    out.value(static_cast<std::uint64_t>(state));
    out.value(static_cast<std::uint64_t>(symbol));
    out.end_array();
  }
  out.end_array();
  out.key("fingerprints").begin_array();
  for (const std::uint64_t hash : fingerprints_) {
    out.value(hex64(hash));
  }
  out.end_array();
  out.key("epochs").begin_array();
  for (const EpochRecord& epoch : epochs_) {
    out.begin_object();
    out.key("sessions").value(epoch.sessions);
    out.key("detections").value(epoch.detections);
    out.key("transitions").begin_array();
    for (const auto& [state, symbol] : epoch.transitions) {
      out.begin_array();
      out.value(static_cast<std::uint64_t>(state));
      out.value(static_cast<std::uint64_t>(symbol));
      out.end_array();
    }
    out.end_array();
    out.key("new_fingerprints").value(epoch.new_fingerprints);
    out.key("transition_coverage").value(epoch.transition_coverage);
    out.end_object();
  }
  out.end_array();
  out.end_object();
  return out.str();
}

support::Result<CoverageCorpus, std::string> CoverageCorpus::from_json(
    std::string_view text) {
  auto parsed = support::parse_json(text);
  if (!parsed.ok()) return "corpus: " + parsed.error();
  const support::JsonValue& root = parsed.value();
  if (!root.is_object()) return std::string("corpus: document is not an object");

  const auto version = as_count(root.find("format_version"));
  if (!version) return std::string("corpus: missing format_version");
  if (*version != kFormatVersion) {
    return "corpus: format_version " + std::to_string(*version) +
           " unsupported (this build reads version " +
           std::to_string(kFormatVersion) + ")";
  }

  CoverageCorpus corpus;
  if (const support::JsonValue* scenario = root.find("scenario")) {
    if (!scenario->is_string()) return std::string("corpus: scenario must be a string");
    corpus.scenario_ = scenario->string;
  }
  if (const support::JsonValue* seed = root.find("seed")) {
    if (!seed->is_string()) {
      return std::string("corpus: seed must be a hex string");
    }
    const auto value = parse_hex64(seed->string);
    if (!value) return "corpus: bad seed '" + seed->string + "'";
    corpus.seed_ = *value;
  }

  const support::JsonValue* transitions = root.find("transitions");
  if (transitions == nullptr || !transitions->is_array()) {
    return std::string("corpus: missing transitions array");
  }
  for (const support::JsonValue& entry : transitions->array) {
    const auto transition = as_transition(entry);
    if (!transition) {
      return std::string("corpus: transition entries must be [state, symbol]");
    }
    corpus.transitions_.insert(*transition);
  }

  const support::JsonValue* fingerprints = root.find("fingerprints");
  if (fingerprints == nullptr || !fingerprints->is_array()) {
    return std::string("corpus: missing fingerprints array");
  }
  for (const support::JsonValue& entry : fingerprints->array) {
    if (!entry.is_string()) {
      return std::string("corpus: fingerprints must be hex strings");
    }
    const auto hash = parse_hex64(entry.string);
    if (!hash) return "corpus: bad fingerprint '" + entry.string + "'";
    corpus.fingerprints_.insert(*hash);
  }

  const support::JsonValue* epochs = root.find("epochs");
  if (epochs == nullptr || !epochs->is_array()) {
    return std::string("corpus: missing epochs array");
  }
  std::set<Transition> seen_in_epochs;
  for (const support::JsonValue& entry : epochs->array) {
    if (!entry.is_object()) return std::string("corpus: epochs must be objects");
    EpochRecord record;
    const auto sessions = as_count(entry.find("sessions"));
    const auto detections = as_count(entry.find("detections"));
    const auto new_fingerprints = as_count(entry.find("new_fingerprints"));
    const support::JsonValue* epoch_transitions = entry.find("transitions");
    const support::JsonValue* coverage = entry.find("transition_coverage");
    if (!sessions || !detections || !new_fingerprints ||
        epoch_transitions == nullptr || !epoch_transitions->is_array() ||
        coverage == nullptr || !coverage->is_number()) {
      return std::string("corpus: malformed epoch record");
    }
    record.sessions = *sessions;
    record.detections = *detections;
    record.new_fingerprints = *new_fingerprints;
    record.transition_coverage = coverage->number;
    for (const support::JsonValue& item : epoch_transitions->array) {
      const auto transition = as_transition(item);
      if (!transition) {
        return std::string(
            "corpus: epoch transition entries must be [state, symbol]");
      }
      // Each transition is "first covered" in exactly one epoch, and the
      // flat set is the union of the epoch lists plus any entries added
      // outside an epoch — a file violating either would replay a
      // different refinement chain than the one that produced it.
      if (!seen_in_epochs.insert(*transition).second) {
        return std::string("corpus: transition repeated across epochs");
      }
      if (!corpus.transitions_.contains(*transition)) {
        return std::string(
            "corpus: epoch transition missing from the covered set");
      }
      record.transitions.push_back(*transition);
    }
    corpus.add_epoch(record);
  }
  // add_epoch re-derived the totals; the stored ones double-check them so
  // a hand-edited file that disagrees with its own records is rejected.
  const auto sessions = as_count(root.find("sessions"));
  const auto detections = as_count(root.find("detections"));
  if (!sessions || !detections) {
    return std::string("corpus: missing sessions/detections totals");
  }
  if (*sessions != corpus.sessions_ || *detections != corpus.detections_) {
    return std::string("corpus: totals disagree with the epoch records");
  }
  return corpus;
}

support::Result<CoverageCorpus, std::string> CoverageCorpus::load(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return "corpus: cannot read '" + path + "'";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto result = from_json(buffer.str());
  if (!result.ok()) return result.error() + " (" + path + ")";
  return result;
}

std::optional<std::string> CoverageCorpus::save(
    const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) return "corpus: cannot write '" + path + "'";
  out << to_json() << '\n';
  out.flush();
  if (!out.good()) return "corpus: write to '" + path + "' failed";
  return std::nullopt;
}

}  // namespace ptest::guided
