#include "ptest/guided/refiner.hpp"

#include <stdexcept>

namespace ptest::guided {

namespace {

/// Learned-weight lookup mirroring the PFA constructor's own resolution
/// (per-state override, then the first context with an explicit bigram
/// entry, then the fallback).  `informative` reports whether the spec
/// actually knew anything about this edge — uniform fallbacks must not
/// count, or an empty estimator would flatten every state it touches.
double learned_weight(const pfa::DistributionSpec& learned, std::uint32_t id,
                      const pfa::PfaState& state, pfa::SymbolId next,
                      bool& informative) {
  if (const auto w = learned.explicit_state_weight(id, next)) {
    informative = true;
    return *w;
  }
  for (const pfa::SymbolId context : state.contexts) {
    if (const auto w = learned.explicit_bigram_weight(context, next)) {
      informative = true;
      return *w;
    }
  }
  return learned.fallback_weight(next);
}

}  // namespace

PlanRefiner::PlanRefiner(const RefinerOptions& options) : options_(options) {
  if (options.exploration_share < 0.0 || options.exploration_share >= 1.0) {
    throw std::invalid_argument(
        "PlanRefiner: exploration_share must be in [0, 1)");
  }
  if (options.estimator_blend < 0.0 || options.estimator_blend > 1.0) {
    throw std::invalid_argument(
        "PlanRefiner: estimator_blend must be in [0, 1]");
  }
  if (options.floor < 0.0 || options.floor >= 1.0) {
    throw std::invalid_argument("PlanRefiner: floor must be in [0, 1)");
  }
}

pfa::DistributionSpec PlanRefiner::refine(
    const core::CompiledTestPlan& plan,
    const std::set<std::pair<std::uint32_t, pfa::SymbolId>>& covered,
    const pfa::DistributionSpec* learned) const {
  pfa::DistributionSpec spec;
  const auto& states = plan.pfa.states();
  for (std::uint32_t state = 0; state < states.size(); ++state) {
    const auto& transitions = states[state].transitions;
    if (transitions.empty()) continue;  // absorbing accept state

    std::size_t uncovered = 0;
    for (const auto& t : transitions) {
      if (!covered.contains({state, t.symbol})) ++uncovered;
    }

    // blend(s, a): the plan's current probability, optionally pulled
    // toward the learned bigram law.  Learned weights are relative, so
    // normalize them over this state's edges before mixing; a state the
    // estimator knows nothing about keeps its current probabilities
    // (uniform fallbacks would otherwise flatten it).
    double learned_total = 0.0;
    bool learned_informative = false;
    if (learned != nullptr && options_.estimator_blend > 0.0) {
      for (const auto& t : transitions) {
        learned_total += learned_weight(*learned, state, states[state],
                                        t.symbol, learned_informative);
      }
    }
    const bool blend = learned_informative && learned_total > 0.0;

    const double share = uncovered == 0 ? 0.0 : options_.exploration_share;
    const double floor =
        options_.floor / static_cast<double>(transitions.size());
    for (const auto& t : transitions) {
      double base = t.probability;
      if (blend) {
        bool ignored = false;
        const double learned_p =
            learned_weight(*learned, state, states[state], t.symbol,
                           ignored) /
            learned_total;
        base = (1.0 - options_.estimator_blend) * base +
               options_.estimator_blend * learned_p;
      }
      double weight = (1.0 - share) * base;
      if (share > 0.0 && !covered.contains({state, t.symbol})) {
        weight += share / static_cast<double>(uncovered);
      }
      if (weight < floor) weight = floor;
      spec.set_state_weight(state, t.symbol, weight);
    }
  }
  return spec;
}

}  // namespace ptest::guided
