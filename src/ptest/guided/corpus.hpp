// CoverageCorpus — the accumulating store behind coverage-guided
// campaigns.
//
// A guided campaign's feedback signal must survive two boundaries: the
// epoch boundary inside one run (each epoch's plan is refined against
// everything earlier epochs covered) and the process boundary between
// runs (`ptest_cli --guided --corpus FILE` resumes yesterday's campaign
// instead of rediscovering the same transitions).  The corpus is that
// signal, reduced to what refinement actually consumes:
//
//   * covered PFA transitions, as (state, symbol) pairs — the automaton
//     skeleton is a pure function of the scenario's regex, so the pairs
//     stay meaningful across invocations and across refined plans
//     (refinement only moves probabilities, never edges);
//   * FNV-1a trace fingerprints of executed sessions (scenario/golden's
//     hash), the behavioral-novelty measure: an epoch that only replays
//     already-seen fingerprints is spending budget on known behavior;
//   * per-epoch yield records (sessions, detections, coverage), the
//     series the plateau detector reads — a resumed campaign continues
//     the trajectory rather than restarting it.
//
// Serialization is JSON via support::JsonWriter, reloaded with
// support::parse_json (the round-trip pair exercised in
// tests/support/json_test.cpp).  Fingerprints are serialized as 16-digit
// hex strings: JSON numbers are doubles and would silently round 64-bit
// hashes.  Loading is strict — a corrupt file or a format_version
// mismatch returns an error Result rather than a half-seeded corpus
// that would skew refinement invisibly.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ptest/pfa/alphabet.hpp"
#include "ptest/support/result.hpp"

namespace ptest::guided {

/// One epoch's accounting as the corpus persists it.  The per-epoch
/// transition list (not just its count) is load-bearing: a resumed
/// campaign replays the refinement chain — refine before epoch g uses
/// the covered set as of epoch g-1 — so the corpus must remember WHEN
/// each transition was first covered, not only that it was.
struct EpochRecord {
  std::uint64_t sessions = 0;
  std::uint64_t detections = 0;
  /// Transitions first covered in this epoch, in covered-set order.
  std::vector<std::pair<std::uint32_t, pfa::SymbolId>> transitions;
  std::uint64_t new_fingerprints = 0;  ///< behaviors first seen here
  double transition_coverage = 0.0;    ///< cumulative, after this epoch

  [[nodiscard]] std::uint64_t new_transitions() const noexcept {
    return transitions.size();
  }
};

class CoverageCorpus {
 public:
  /// Bumped on any incompatible schema change; from_json rejects other
  /// versions explicitly (an old corpus must not half-load).
  static constexpr std::uint64_t kFormatVersion = 1;

  using Transition = std::pair<std::uint32_t, pfa::SymbolId>;

  // --- accumulation (what GuidedCampaign folds per epoch) ------------------
  /// Returns true when the transition was not yet covered.
  bool add_transition(std::uint32_t state, pfa::SymbolId symbol) {
    return transitions_.insert({state, symbol}).second;
  }
  /// Returns true when the fingerprint names a never-seen behavior.
  bool add_fingerprint(std::uint64_t hash) {
    return fingerprints_.insert(hash).second;
  }
  void add_epoch(const EpochRecord& record) {
    epochs_.push_back(record);
    sessions_ += record.sessions;
    detections_ += record.detections;
  }
  /// Label checked on resume (see matches_scenario); empty = unlabeled.
  void set_scenario(std::string name) { scenario_ = std::move(name); }
  /// Seed stamped by the campaign that built this corpus (see
  /// matches_seed); unset = unstamped.
  void set_seed(std::uint64_t seed) { seed_ = seed; }

  // --- queries -------------------------------------------------------------
  [[nodiscard]] const std::set<Transition>& transitions() const noexcept {
    return transitions_;
  }
  [[nodiscard]] bool covers(std::uint32_t state,
                            pfa::SymbolId symbol) const noexcept {
    return transitions_.contains({state, symbol});
  }
  [[nodiscard]] const std::set<std::uint64_t>& fingerprints() const noexcept {
    return fingerprints_;
  }
  [[nodiscard]] const std::vector<EpochRecord>& epochs() const noexcept {
    return epochs_;
  }
  [[nodiscard]] std::uint64_t sessions() const noexcept { return sessions_; }
  [[nodiscard]] std::uint64_t detections() const noexcept {
    return detections_;
  }
  [[nodiscard]] const std::string& scenario() const noexcept {
    return scenario_;
  }
  [[nodiscard]] bool empty() const noexcept {
    return transitions_.empty() && fingerprints_.empty() && epochs_.empty();
  }
  /// True when this corpus may seed a campaign labeled `name`: unlabeled
  /// corpora match anything, labeled ones only their own scenario.
  [[nodiscard]] bool matches_scenario(std::string_view name) const noexcept {
    return scenario_.empty() || scenario_ == name;
  }
  [[nodiscard]] const std::optional<std::uint64_t>& seed() const noexcept {
    return seed_;
  }
  /// True when this corpus may seed a campaign running under `seed`.
  /// The resume contract (a resumed run continues the uninterrupted
  /// one bit-for-bit) only holds under the seed that built the corpus:
  /// the replayed refinement chain and the continued run-index stream
  /// both belong to that seed's session stream, so a mismatch would
  /// silently splice two campaigns together.
  [[nodiscard]] bool matches_seed(std::uint64_t seed) const noexcept {
    return !seed_ || *seed_ == seed;
  }

  // --- persistence ---------------------------------------------------------
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] static support::Result<CoverageCorpus, std::string> from_json(
      std::string_view text);
  /// File convenience wrappers over to_json/from_json.
  [[nodiscard]] static support::Result<CoverageCorpus, std::string> load(
      const std::string& path);
  /// nullopt on success, the error message otherwise.
  [[nodiscard]] std::optional<std::string> save(
      const std::string& path) const;

 private:
  std::string scenario_;
  std::optional<std::uint64_t> seed_;
  std::uint64_t sessions_ = 0;
  std::uint64_t detections_ = 0;
  std::set<Transition> transitions_;
  std::set<std::uint64_t> fingerprints_;
  std::vector<EpochRecord> epochs_;
};

}  // namespace ptest::guided
