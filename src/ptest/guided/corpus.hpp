// CoverageCorpus — the accumulating store behind coverage-guided
// campaigns.
//
// A guided campaign's feedback signal must survive two boundaries: the
// epoch boundary inside one run (each epoch's plan is refined against
// everything earlier epochs covered) and the process boundary between
// runs (`ptest_cli --guided --corpus FILE` resumes yesterday's campaign
// instead of rediscovering the same transitions).  The corpus is that
// signal, reduced to what refinement actually consumes:
//
//   * covered PFA transitions, as (state, symbol) pairs — the automaton
//     skeleton is a pure function of the scenario's regex, so the pairs
//     stay meaningful across invocations and across refined plans
//     (refinement only moves probabilities, never edges);
//   * FNV-1a trace fingerprints of executed sessions (scenario/golden's
//     hash), the behavioral-novelty measure: an epoch that only replays
//     already-seen fingerprints is spending budget on known behavior;
//   * per-epoch yield records (sessions, detections, coverage), the
//     series the plateau detector reads — a resumed campaign continues
//     the trajectory rather than restarting it.
//
// Serialization is JSON via support::JsonWriter, reloaded with
// support::parse_json (the round-trip pair exercised in
// tests/support/json_test.cpp).  Fingerprints are serialized as 16-digit
// hex strings: JSON numbers are doubles and would silently round 64-bit
// hashes.  Loading is strict — a corrupt file or a format_version
// mismatch returns an error Result rather than a half-seeded corpus
// that would skew refinement invisibly.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ptest/pfa/alphabet.hpp"
#include "ptest/support/result.hpp"

namespace ptest::guided {

/// One epoch's accounting as the corpus persists it.  The per-epoch
/// transition list (not just its count) is load-bearing: a resumed
/// campaign replays the refinement chain — refine before epoch g uses
/// the covered set as of epoch g-1 — so the corpus must remember WHEN
/// each transition was first covered, not only that it was.
struct EpochRecord {
  std::uint64_t sessions = 0;
  std::uint64_t detections = 0;
  /// Transitions first covered in this epoch, in covered-set order.
  std::vector<std::pair<std::uint32_t, pfa::SymbolId>> transitions;
  std::uint64_t new_fingerprints = 0;  ///< behaviors first seen here
  double transition_coverage = 0.0;    ///< cumulative, after this epoch

  [[nodiscard]] std::uint64_t new_transitions() const noexcept {
    return transitions.size();
  }
  [[nodiscard]] bool operator==(const EpochRecord&) const = default;
};

/// Session accounting for a contiguous run-index interval
/// [base, base + sessions) — how a fleet shard reports "I ran these
/// sessions and they detected this many bugs" without epoch structure.
/// Intervals make the accounting mergeable: the same interval reported
/// twice is one interval (idempotence), disjoint intervals add, and a
/// partially overlapping interval is a caller bug the merge can detect
/// instead of silently double-counting.  Contiguous spans coalesce, so
/// the shards of one campaign merge into the exact single span the
/// uninterrupted run would record.
struct SessionSpan {
  std::uint64_t base = 0;      ///< first global run index
  std::uint64_t sessions = 0;  ///< interval length
  std::uint64_t detections = 0;

  [[nodiscard]] std::uint64_t end() const noexcept { return base + sessions; }
  [[nodiscard]] bool operator==(const SessionSpan&) const = default;
};

class CoverageCorpus {
 public:
  /// Bumped on any incompatible schema change; from_json rejects other
  /// versions explicitly (an old corpus must not half-load).
  static constexpr std::uint64_t kFormatVersion = 1;

  using Transition = std::pair<std::uint32_t, pfa::SymbolId>;

  // --- accumulation (what GuidedCampaign folds per epoch) ------------------
  /// Returns true when the transition was not yet covered.
  bool add_transition(std::uint32_t state, pfa::SymbolId symbol) {
    return transitions_.insert({state, symbol}).second;
  }
  /// Returns true when the fingerprint names a never-seen behavior.
  bool add_fingerprint(std::uint64_t hash) {
    return fingerprints_.insert(hash).second;
  }
  void add_epoch(const EpochRecord& record) {
    epochs_.push_back(record);
    sessions_ += record.sessions;
    detections_ += record.detections;
  }
  /// Records that sessions [base, base + sessions) ran and detected
  /// `detections` bugs (the fleet-shard accounting).  Spans already
  /// covered are ignored; a partial overlap with an existing span
  /// returns an error (and leaves the corpus unchanged).  nullopt on
  /// success.
  [[nodiscard]] std::optional<std::string> add_span(std::uint64_t base,
                                                    std::uint64_t sessions,
                                                    std::uint64_t detections);
  /// Folds `other` into this corpus.  The fold is commutative,
  /// associative and idempotent for corpora that agree on scenario,
  /// seed and history — transitions/fingerprints are set unions, spans
  /// are an interval union, and of two epoch histories where one is a
  /// prefix of the other the longer wins.  Disagreement (different
  /// scenario labels or seeds, divergent epoch histories, partially
  /// overlapping spans, one interval reported with two detection
  /// counts) returns an error and leaves this corpus unchanged.
  [[nodiscard]] std::optional<std::string> merge(const CoverageCorpus& other);
  /// Label checked on resume (see matches_scenario); empty = unlabeled.
  void set_scenario(std::string name) { scenario_ = std::move(name); }
  /// Seed stamped by the campaign that built this corpus (see
  /// matches_seed); unset = unstamped.
  void set_seed(std::uint64_t seed) { seed_ = seed; }

  // --- queries -------------------------------------------------------------
  [[nodiscard]] const std::set<Transition>& transitions() const noexcept {
    return transitions_;
  }
  [[nodiscard]] bool covers(std::uint32_t state,
                            pfa::SymbolId symbol) const noexcept {
    return transitions_.contains({state, symbol});
  }
  [[nodiscard]] const std::set<std::uint64_t>& fingerprints() const noexcept {
    return fingerprints_;
  }
  [[nodiscard]] const std::vector<EpochRecord>& epochs() const noexcept {
    return epochs_;
  }
  /// Sorted, disjoint, non-adjacent (coalesced) session spans.
  [[nodiscard]] const std::vector<SessionSpan>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] std::uint64_t sessions() const noexcept { return sessions_; }
  [[nodiscard]] std::uint64_t detections() const noexcept {
    return detections_;
  }
  [[nodiscard]] const std::string& scenario() const noexcept {
    return scenario_;
  }
  [[nodiscard]] bool empty() const noexcept {
    return transitions_.empty() && fingerprints_.empty() &&
           epochs_.empty() && spans_.empty();
  }
  /// True when this corpus may seed a campaign labeled `name`: unlabeled
  /// corpora match anything, labeled ones only their own scenario.
  [[nodiscard]] bool matches_scenario(std::string_view name) const noexcept {
    return scenario_.empty() || scenario_ == name;
  }
  [[nodiscard]] const std::optional<std::uint64_t>& seed() const noexcept {
    return seed_;
  }
  /// True when this corpus may seed a campaign running under `seed`.
  /// The resume contract (a resumed run continues the uninterrupted
  /// one bit-for-bit) only holds under the seed that built the corpus:
  /// the replayed refinement chain and the continued run-index stream
  /// both belong to that seed's session stream, so a mismatch would
  /// silently splice two campaigns together.
  [[nodiscard]] bool matches_seed(std::uint64_t seed) const noexcept {
    return !seed_ || *seed_ == seed;
  }

  // --- persistence ---------------------------------------------------------
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] static support::Result<CoverageCorpus, std::string> from_json(
      std::string_view text);
  /// File convenience wrappers over to_json/from_json.
  [[nodiscard]] static support::Result<CoverageCorpus, std::string> load(
      const std::string& path);
  /// nullopt on success, the error message otherwise.
  [[nodiscard]] std::optional<std::string> save(
      const std::string& path) const;

 private:
  /// Unions `span` into spans_ (containment-skip / supersede /
  /// coalesce; partial overlap errors).  Does NOT touch the totals —
  /// callers recompute or adjust them.
  [[nodiscard]] std::optional<std::string> insert_span(SessionSpan span);
  /// sessions_/detections_ := epoch sums + span sums (the invariant
  /// from_json also enforces on stored totals).
  void recompute_totals();

  std::string scenario_;
  std::optional<std::uint64_t> seed_;
  std::uint64_t sessions_ = 0;
  std::uint64_t detections_ = 0;
  std::set<Transition> transitions_;
  std::set<std::uint64_t> fingerprints_;
  std::vector<EpochRecord> epochs_;
  std::vector<SessionSpan> spans_;
};

}  // namespace ptest::guided
