// Naive random-command baseline ("common functional testing" strawman).
//
// Instead of PFA-legal lifecycles, this baseline issues uniformly random
// (service, slot) commands.  Most sequences are illegal (resume without
// suspend, delete before create, ...) and bounce off the kernel's state
// checks, so its effective stress per command is far below pTest's —
// the comparison bench_baselines quantifies exactly that gap, which is
// the paper's core argument for *adaptive* (model-driven) testing.
#pragma once

#include "ptest/core/adaptive_test.hpp"

namespace ptest::baseline {

/// Builds a uniformly random merged pattern over the six services: `total`
/// elements across `slots` slots.
[[nodiscard]] pattern::MergedPattern random_command_pattern(
    const pfa::Alphabet& alphabet, std::size_t slots, std::size_t total,
    support::Rng& rng);

/// Runs the random baseline under the same session machinery as pTest.
[[nodiscard]] core::AdaptiveTestResult random_baseline_test(
    const core::PtestConfig& config, pfa::Alphabet& alphabet,
    const core::WorkloadSetup& setup);

}  // namespace ptest::baseline
