// ConTest-style baseline: random schedule noise.
//
// "ConTest debugs multi-threaded programs by randomly interleaving the
// execution of threads" (paper §I).  Our analogue perturbs the system at
// the same two levels ConTest's instrumentation does:
//   * slave scheduler noise — with probability p the kernel dispatches a
//     random runnable task (KernelConfig::schedule_noise);
//   * master command jitter — random delays before command issues
//     (PtestConfig::noise_max_delay, applied by the session).
//
// Patterns stay PFA-legal; only the *interleaving* is randomized — which
// is precisely the difference between ConTest and pTest's directed merge
// operators that the benches quantify.
#pragma once

#include "ptest/core/config.hpp"

namespace ptest::baseline {

struct NoiseOptions {
  double schedule_noise = 0.25;
  sim::Tick max_issue_delay = 8;
};

/// Returns `config` with ConTest-style noise armed (merge op forced to
/// round-robin so noise is the only interleaving force).
[[nodiscard]] core::PtestConfig with_contest_noise(core::PtestConfig config,
                                                   const NoiseOptions& noise);

}  // namespace ptest::baseline
