#include "ptest/baseline/random_walk.hpp"

#include "ptest/bridge/protocol.hpp"

namespace ptest::baseline {

pattern::MergedPattern random_command_pattern(const pfa::Alphabet& alphabet,
                                              std::size_t slots,
                                              std::size_t total,
                                              support::Rng& rng) {
  static const char* kServices[] = {"TC", "TD", "TS", "TR", "TCH", "TY"};
  pattern::MergedPattern merged;
  merged.elements.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    const auto slot =
        static_cast<pattern::SlotIndex>(rng.below(slots == 0 ? 1 : slots));
    const char* service = kServices[rng.below(6)];
    merged.elements.push_back({slot, alphabet.at(service)});
  }
  return merged;
}

core::AdaptiveTestResult random_baseline_test(
    const core::PtestConfig& config, pfa::Alphabet& alphabet,
    const core::WorkloadSetup& setup) {
  bridge::intern_service_alphabet(alphabet);
  support::Rng rng(config.seed ^ 0xbadbeefULL);

  core::AdaptiveTestResult result;
  result.merged = random_command_pattern(alphabet, config.n,
                                         config.n * config.s, rng);
  // Per-slot projections stand in for "patterns" in the state records.
  result.patterns.resize(config.n);
  for (pattern::SlotIndex slot = 0; slot < config.n; ++slot) {
    result.patterns[slot].symbols = result.merged.project(slot);
  }
  core::TestSession session(config, alphabet, result.merged, result.patterns,
                            setup);
  result.session = session.run();
  return result;
}

}  // namespace ptest::baseline
