#include "ptest/baseline/noise.hpp"

namespace ptest::baseline {

core::PtestConfig with_contest_noise(core::PtestConfig config,
                                     const NoiseOptions& noise) {
  config.kernel.schedule_noise = noise.schedule_noise;
  config.kernel.noise_seed = config.seed ^ 0x5eedc0de;
  config.noise_max_delay = noise.max_issue_delay;
  config.op = pattern::MergeOp::kRoundRobin;
  return config;
}

}  // namespace ptest::baseline
