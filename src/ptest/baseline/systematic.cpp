#include "ptest/baseline/systematic.hpp"

#include "ptest/pattern/merger.hpp"

namespace ptest::baseline {

SystematicResult systematic_explore(const core::PtestConfig& config,
                                    pfa::Alphabet& alphabet,
                                    const core::WorkloadSetup& setup,
                                    const SystematicOptions& options) {
  core::AdaptiveTestResult generated =
      core::generate_and_merge(config, alphabet);

  const std::vector<pattern::MergedPattern> interleavings =
      pattern::PatternMerger::enumerate_interleavings(
          generated.patterns, options.max_interleavings);

  SystematicResult result;
  result.interleavings_total = interleavings.size();
  result.exhausted_budget =
      interleavings.size() >= options.max_interleavings;

  for (const pattern::MergedPattern& merged : interleavings) {
    if (result.runs_executed >= options.max_runs) {
      result.exhausted_budget = true;
      break;
    }
    ++result.runs_executed;
    core::TestSession session(config, alphabet, merged, generated.patterns,
                              setup);
    const core::SessionResult session_result = session.run();
    if (session_result.outcome == core::Outcome::kBug) {
      result.found = true;
      result.report = session_result.report;
      break;
    }
  }
  return result;
}

}  // namespace ptest::baseline
