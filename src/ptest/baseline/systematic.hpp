// CHESS-style baseline: bounded systematic interleaving exploration.
//
// "CHESS uses model checking techniques to provide higher fault coverage.
// However, model checking is not efficient when searching infinite state
// spaces" (paper §I).  This explorer enumerates interleavings of the n
// test patterns (linear extensions of their per-slot orders) up to a
// budget and runs each deterministically until a bug appears.  On tiny
// configurations it is exhaustive (certainty); on realistic ones the
// multinomial blowup caps it — the trade-off the benches demonstrate.
#pragma once

#include <optional>

#include "ptest/core/adaptive_test.hpp"

namespace ptest::baseline {

struct SystematicResult {
  bool found = false;
  std::optional<core::BugReport> report;
  std::size_t runs_executed = 0;
  std::size_t interleavings_total = 0;  // enumerated (<= budget)
  bool exhausted_budget = false;
};

struct SystematicOptions {
  /// Maximum interleavings to enumerate (the state-space budget).
  std::size_t max_interleavings = 1024;
  /// Maximum sessions to execute (each runs one interleaving).
  std::size_t max_runs = 256;
};

/// Enumerates interleavings of the patterns generated from `config`
/// (kSequential merge order is the enumeration base) and runs each until a
/// bug is found or budgets are exhausted.
[[nodiscard]] SystematicResult systematic_explore(
    const core::PtestConfig& config, pfa::Alphabet& alphabet,
    const core::WorkloadSetup& setup, const SystematicOptions& options = {});

}  // namespace ptest::baseline
