// CoTask: the C++20 coroutine task runtime behind TaskProgram.
//
// A task body is a plain coroutine returning CoTask.  Each `co_await` on
// one of the step operations (compute / yield / lock / unlock) suspends
// the coroutine and records the corresponding StepResult in the promise;
// `CoTask::step` resumes the frame exactly once and hands that result to
// the kernel, so one co_await == one kernel tick == one StepResult —
// byte-for-byte the protocol the explicit-PC state machines spoke.
// `co_return code` desugars to the Exit step and is then repeated forever,
// matching the old machines' terminal behaviour.
//
// The promise carries an advisory TaskState mirror (the kernel's Tcb.state
// stays authoritative — a Lock op is mirrored as kBlocked even when the
// kernel grants it immediately) and an intrusive queue hook so schedulers
// can keep ready/wait lists without allocating.  The only heap allocation
// is the coroutine frame itself.
//
// Lifetime rules:
//  * The TaskContext passed to step() is only valid during that resume.
//    Bodies must never cache a TaskContext& across a co_await; instead
//    they `co_await env()` once and call through the returned TaskEnv,
//    which re-reads the per-step context pointer on every access.
//  * Destroying a CoTask destroys the frame even while suspended, running
//    the destructors of locals in scope — this is what makes task_delete,
//    kernel panic, and campaign abort leak-free (see co_task_test.cpp).
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <memory>
#include <string>
#include <utility>

#include "ptest/pcore/program.hpp"
#include "ptest/pcore/task.hpp"

namespace ptest::pcore {

class TaskEnv;

namespace co_ops {
struct Compute {
  std::uint32_t units;
};
struct Yield {};
struct Lock {
  std::uint32_t mutex;
};
struct Unlock {
  std::uint32_t mutex;
};
struct Env {};
}  // namespace co_ops

/// Step operations a task body awaits.  Each suspends for one kernel tick.
[[nodiscard]] inline co_ops::Compute compute(std::uint32_t units = 1) {
  return {units};
}
[[nodiscard]] inline co_ops::Yield yield() { return {}; }
[[nodiscard]] inline co_ops::Lock lock(std::uint32_t mutex) {
  return {mutex};
}
[[nodiscard]] inline co_ops::Unlock unlock(std::uint32_t mutex) {
  return {mutex};
}
/// Non-suspending: yields the TaskEnv handle for shared-state access.
[[nodiscard]] inline co_ops::Env env() { return {}; }

class CoTask {
 public:
  struct promise_type {
    /// The step produced by the most recent suspension (or co_return).
    StepResult pending = StepResult::compute();
    /// Valid only while CoTask::step is resuming the frame.
    TaskContext* context = nullptr;
    /// Advisory mirror of the kernel's Tcb.state for this frame.
    TaskState state = TaskState::kReady;
    std::exception_ptr error;
    /// Intrusive hook for CoTaskQueue; null when not enqueued.
    promise_type* queue_next = nullptr;

    CoTask get_return_object() noexcept;
    std::suspend_always initial_suspend() const noexcept { return {}; }
    std::suspend_always final_suspend() const noexcept { return {}; }
    void return_value(std::uint32_t code) noexcept {
      pending = StepResult::exit(code);
      state = TaskState::kTerminated;
    }
    void unhandled_exception() noexcept {
      error = std::current_exception();
      pending = StepResult::exit(1);
      state = TaskState::kTerminated;
    }

    /// One-tick suspension: the StepResult was stored by await_transform.
    struct StepAwaiter {
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<>) const noexcept {}
      void await_resume() const noexcept {}
    };
    /// Non-suspending access to the environment handle.
    struct EnvAwaiter {
      promise_type* promise;
      [[nodiscard]] bool await_ready() const noexcept { return true; }
      void await_suspend(std::coroutine_handle<>) const noexcept {}
      [[nodiscard]] TaskEnv await_resume() const noexcept;
    };

    StepAwaiter await_transform(co_ops::Compute op) noexcept {
      pending = StepResult::compute(op.units);
      state = TaskState::kRunning;
      return {};
    }
    StepAwaiter await_transform(co_ops::Yield) noexcept {
      pending = StepResult::yield();
      state = TaskState::kReady;
      return {};
    }
    StepAwaiter await_transform(co_ops::Lock op) noexcept {
      pending = StepResult::lock(op.mutex);
      state = TaskState::kBlocked;
      return {};
    }
    StepAwaiter await_transform(co_ops::Unlock op) noexcept {
      pending = StepResult::unlock(op.mutex);
      state = TaskState::kRunning;
      return {};
    }
    /// Raw StepResult pass-through (ScriptProgram replays fixtures).
    StepAwaiter await_transform(StepResult step) noexcept {
      pending = step;
      return {};
    }
    EnvAwaiter await_transform(co_ops::Env) noexcept { return {this}; }
    /// Anything else awaited in a task body is a bug, not a kernel step.
    template <typename T>
    void await_transform(T&&) = delete;
  };

  using Handle = std::coroutine_handle<promise_type>;

  CoTask() = default;
  explicit CoTask(Handle handle) noexcept : handle_(handle) {}
  CoTask(CoTask&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  CoTask& operator=(CoTask&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  CoTask(const CoTask&) = delete;
  CoTask& operator=(const CoTask&) = delete;
  ~CoTask() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return handle_ != nullptr; }
  /// True once the body ran to co_return (or threw).
  [[nodiscard]] bool done() const noexcept {
    return handle_ && handle_.done();
  }
  [[nodiscard]] TaskState state() const noexcept {
    return handle_ ? handle_.promise().state : TaskState::kFree;
  }
  /// The frame's promise (queue hooks live there); null when invalid.
  [[nodiscard]] promise_type* promise() const noexcept {
    return handle_ ? &handle_.promise() : nullptr;
  }

  /// Resumes the frame for exactly one step and returns the StepResult it
  /// produced; after co_return, keeps returning the Exit step without
  /// resuming (terminal behaviour of the old state machines).
  StepResult step(TaskContext& ctx);

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  Handle handle_;
};

inline CoTask CoTask::promise_type::get_return_object() noexcept {
  return CoTask(CoTask::Handle::from_promise(*this));
}

/// Shared-state handle a body obtains with `co_await env()`.  Valid for
/// the whole coroutine lifetime: every call indirects through the
/// promise's per-step context pointer, so it never dangles across
/// suspensions the way a cached TaskContext& would.  Only usable while
/// the frame is being resumed (i.e. between co_awaits).
class TaskEnv {
 public:
  explicit TaskEnv(CoTask::promise_type* promise) noexcept
      : promise_(promise) {}

  [[nodiscard]] std::uint8_t task_id() const { return ctx().task_id(); }
  [[nodiscard]] sim::Tick now() const { return ctx().now(); }
  [[nodiscard]] bool holds(std::uint32_t mutex) const {
    return ctx().holds(mutex);
  }
  [[nodiscard]] std::int32_t shared(std::size_t index) const {
    return ctx().shared(index);
  }
  void set_shared(std::size_t index, std::int32_t value) {
    ctx().set_shared(index, value);
  }

 private:
  [[nodiscard]] TaskContext& ctx() const {
    assert(promise_->context != nullptr &&
           "TaskEnv used outside a resume (across a co_await?)");
    return *promise_->context;
  }

  CoTask::promise_type* promise_;
};

inline TaskEnv CoTask::promise_type::EnvAwaiter::await_resume()
    const noexcept {
  return TaskEnv(promise);
}

/// Intrusive FIFO of coroutine promises (ready/wait lists).  Uses the
/// promise's queue_next hook — no allocation; a promise may sit in at
/// most one queue at a time.
class CoTaskQueue {
 public:
  [[nodiscard]] bool empty() const noexcept { return head_ == nullptr; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  void push(CoTask::promise_type& promise) noexcept;
  [[nodiscard]] CoTask::promise_type* pop() noexcept;

 private:
  CoTask::promise_type* head_ = nullptr;
  CoTask::promise_type* tail_ = nullptr;
  std::size_t size_ = 0;
};

/// Adapts a coroutine body to the TaskProgram interface the kernel steps.
class CoProgram final : public TaskProgram {
 public:
  CoProgram(std::string name, CoTask task)
      : name_(std::move(name)), task_(std::move(task)) {}
  [[nodiscard]] std::string name() const override { return name_; }
  StepResult step(TaskContext& ctx) override { return task_.step(ctx); }

 private:
  std::string name_;
  CoTask task_;
};

[[nodiscard]] inline std::unique_ptr<TaskProgram> make_co_program(
    std::string name, CoTask task) {
  return std::make_unique<CoProgram>(std::move(name), std::move(task));
}

}  // namespace ptest::pcore
