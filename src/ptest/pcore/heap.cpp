#include "ptest/pcore/heap.hpp"

#include <algorithm>
#include <stdexcept>

namespace ptest::pcore {

KernelHeap::KernelHeap(std::size_t capacity, HeapFaultPlan fault_plan)
    : capacity_(capacity), fault_plan_(fault_plan) {
  Block initial{kMagic, static_cast<std::uint32_t>(capacity - kHeader), true,
                false};
  blocks_.emplace_back(0, initial);
  stats_.capacity = capacity;
}

std::size_t KernelHeap::index_of(std::uint32_t offset) const {
  const auto it = std::lower_bound(
      blocks_.begin(), blocks_.end(), offset,
      [](const auto& entry, std::uint32_t off) { return entry.first < off; });
  if (it == blocks_.end() || it->first != offset) {
    throw std::invalid_argument("KernelHeap: unknown block offset " +
                                std::to_string(offset));
  }
  return static_cast<std::size_t>(it - blocks_.begin());
}

void KernelHeap::panic(std::string reason) {
  panicked_ = true;
  panic_reason_ = std::move(reason);
}

std::optional<std::uint32_t> KernelHeap::alloc(std::size_t size) {
  if (panicked_) return std::nullopt;
  if (size == 0) size = 1;
  const auto need = static_cast<std::uint32_t>((size + 7) & ~std::size_t{7});

  for (int attempt = 0; attempt < 2; ++attempt) {
    for (std::size_t idx = 0; idx < blocks_.size(); ++idx) {
      const std::uint32_t offset = blocks_[idx].first;
      {
        Block& block = blocks_[idx].second;
        if (block.magic != kMagic) {
          panic("heap: corrupted block header at offset " +
                std::to_string(offset) + " during alloc");
          return std::nullopt;
        }
        if (!block.free || block.in_graveyard || block.size < need) continue;
      }
      // Split if the remainder can hold a header plus a minimal payload.
      // (Re-index after any mutation: emplace invalidates references.)
      if (blocks_[idx].second.size >= need + kHeader + 8) {
        const std::uint32_t rest_offset = offset + kHeader + need;
        Block rest{kMagic, blocks_[idx].second.size - need - kHeader, true,
                   false};
        blocks_[idx].second.size = need;
        blocks_[idx].second.free = false;
        blocks_.emplace(blocks_.begin() + static_cast<std::ptrdiff_t>(idx) + 1,
                        rest_offset, rest);
      } else {
        blocks_[idx].second.free = false;
      }
      ++stats_.total_allocs;
      stats_.live_bytes += blocks_[idx].second.size;
      ++stats_.live_blocks;
      return offset;
    }
    // First pass failed: collect (sweep graveyard + coalesce) and retry.
    if (attempt == 0) collect();
    if (panicked_) return std::nullopt;
  }
  return std::nullopt;
}

void KernelHeap::free(std::uint32_t offset) {
  if (panicked_) return;
  auto& [off, block] = blocks_[index_of(offset)];
  if (block.magic != kMagic) {
    panic("heap: corrupted block header at offset " + std::to_string(offset) +
          " during free");
    return;
  }
  if (block.free) {
    panic("heap: double free at offset " + std::to_string(offset));
    return;
  }
  block.free = true;
  ++stats_.total_frees;
  stats_.live_bytes -= block.size;
  --stats_.live_blocks;
}

void KernelHeap::defer_free(std::uint32_t offset) {
  if (panicked_) return;
  auto& [off, block] = blocks_[index_of(offset)];
  if (block.magic != kMagic) {
    panic("heap: corrupted block header at offset " + std::to_string(offset) +
          " during defer_free");
    return;
  }
  if (block.free || block.in_graveyard) {
    panic("heap: double defer_free at offset " + std::to_string(offset));
    return;
  }
  block.in_graveyard = true;
  graveyard_.push_back(offset);
}

void KernelHeap::collect() {
  if (panicked_) return;
  ++stats_.gc_runs;

  // Sweep the graveyard.
  for (const std::uint32_t offset : graveyard_) {
    auto& [off, block] = blocks_[index_of(offset)];
    if (block.magic != kMagic) {
      panic("heap: corrupted block header at offset " +
            std::to_string(offset) + " during graveyard sweep");
      return;
    }
    block.in_graveyard = false;
    block.free = true;
    ++stats_.total_frees;
    stats_.live_bytes -= block.size;
    --stats_.live_blocks;
    ++churn_;

    // ---- Injected fault (case study 1 ground truth) ----
    // Under sustained create/delete churn at high allocation pressure the
    // buggy collector smashes the *next* block's header while unlinking —
    // classic off-by-one on the free-list node size.  The damage is
    // silent now; a later alloc/sweep walks onto the bad header and the
    // kernel panics, exactly the delayed-crash signature of the paper's
    // first test case.
    if (fault_plan_.gc_corruption && !corruption_armed_fired_ &&
        churn_ >= fault_plan_.churn_threshold &&
        stats_.live_blocks >= fault_plan_.live_block_threshold) {
      const std::size_t victim = index_of(offset);
      if (victim + 1 < blocks_.size()) {
        blocks_[victim + 1].second.magic ^= 0x00ff00ffu;
        corruption_armed_fired_ = true;
      }
    }
  }
  graveyard_.clear();

  // Coalesce adjacent free blocks.
  std::vector<std::pair<std::uint32_t, Block>> merged;
  merged.reserve(blocks_.size());
  for (const auto& [offset, block] : blocks_) {
    if (block.magic != kMagic) {
      panic("heap: corrupted block header at offset " +
            std::to_string(offset) + " during coalesce");
      return;
    }
    if (!merged.empty() && merged.back().second.free && block.free &&
        !block.in_graveyard && !merged.back().second.in_graveyard &&
        merged.back().first + kHeader + merged.back().second.size == offset) {
      merged.back().second.size += kHeader + block.size;
      ++stats_.coalesced;
    } else {
      merged.emplace_back(offset, block);
    }
  }
  blocks_ = std::move(merged);
}

bool KernelHeap::check_integrity() {
  if (panicked_) return false;
  for (const auto& [offset, block] : blocks_) {
    if (block.magic != kMagic) {
      panic("heap: corrupted block header at offset " +
            std::to_string(offset) + " during integrity check");
      return false;
    }
  }
  return true;
}

HeapStats KernelHeap::stats() const {
  HeapStats s = stats_;
  s.graveyard_blocks = graveyard_.size();
  s.free_bytes = 0;
  for (const auto& [offset, block] : blocks_) {
    if (block.free && !block.in_graveyard) s.free_bytes += block.size;
  }
  return s;
}

}  // namespace ptest::pcore
