// Task programs: the code a pCore task executes, interpreted one bounded
// step per kernel tick.
//
// Programs are deterministic coroutines stepped by the kernel (CoTask in
// co_task.hpp) rather than native threads, which is what makes the whole
// simulation replayable.  A step returns a StepResult describing the
// single kernel interaction it performed; blocking lock semantics are
// "block until held": when a Lock step cannot acquire, the kernel blocks
// the task and transfers ownership on wake, so the program simply
// proceeds on its next step.
#pragma once

#include <cstdint>
#include <string>

#include "ptest/sim/clock.hpp"

namespace ptest::pcore {

enum class StepKind : std::uint8_t {
  kCompute,  // arg = work units consumed (>= 1)
  kYield,    // give up the CPU voluntarily
  kLock,     // arg = mutex id; block until held
  kUnlock,   // arg = mutex id
  kExit,     // program finished; arg = exit code (0 = success)
};

struct StepResult {
  StepKind kind = StepKind::kCompute;
  std::uint32_t arg = 1;

  static StepResult compute(std::uint32_t units = 1) {
    return {StepKind::kCompute, units};
  }
  static StepResult yield() { return {StepKind::kYield, 0}; }
  static StepResult lock(std::uint32_t mutex) {
    return {StepKind::kLock, mutex};
  }
  static StepResult unlock(std::uint32_t mutex) {
    return {StepKind::kUnlock, mutex};
  }
  static StepResult exit(std::uint32_t code = 0) {
    return {StepKind::kExit, code};
  }
};

/// The kernel-side view a program may consult during a step.
class TaskContext {
 public:
  virtual ~TaskContext() = default;

  [[nodiscard]] virtual std::uint8_t task_id() const = 0;
  [[nodiscard]] virtual sim::Tick now() const = 0;

  /// True if this task currently owns `mutex`.
  [[nodiscard]] virtual bool holds(std::uint32_t mutex) const = 0;

  /// Shared user words (the `x`, `y` flags of the paper's Fig. 1 live
  /// here; both slave tasks and — via the kernel — master threads see
  /// them).
  [[nodiscard]] virtual std::int32_t shared(std::size_t index) const = 0;
  virtual void set_shared(std::size_t index, std::int32_t value) = 0;
};

class TaskProgram {
 public:
  virtual ~TaskProgram() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Executes one bounded step.  Must not loop unboundedly.
  virtual StepResult step(TaskContext& ctx) = 0;
};

}  // namespace ptest::pcore
