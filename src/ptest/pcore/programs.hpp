// Small built-in task programs used by tests and as building blocks; the
// paper's workloads (quicksort, dining philosophers, Fig. 1 spin pair)
// live in ptest/workload.
#pragma once

#include <vector>

#include "ptest/pcore/program.hpp"

namespace ptest::pcore {

/// Computes forever (never exits); useful for scheduler tests.
class IdleProgram final : public TaskProgram {
 public:
  [[nodiscard]] std::string name() const override { return "idle"; }
  StepResult step(TaskContext& ctx) override;
};

/// Computes `units` steps then exits successfully.
class FiniteComputeProgram final : public TaskProgram {
 public:
  explicit FiniteComputeProgram(std::uint32_t units);
  [[nodiscard]] std::string name() const override { return "compute"; }
  StepResult step(TaskContext& ctx) override;

 private:
  std::uint32_t remaining_;
};

/// Replays a fixed list of StepResults (optionally in a loop).
class ScriptProgram final : public TaskProgram {
 public:
  explicit ScriptProgram(std::vector<StepResult> script, bool loop = false);
  [[nodiscard]] std::string name() const override { return "script"; }
  StepResult step(TaskContext& ctx) override;

 private:
  std::vector<StepResult> script_;
  bool loop_;
  std::size_t pc_ = 0;
};

/// Locks a mutex, holds it for `hold_steps` compute steps, unlocks, exits.
class LockHoldProgram final : public TaskProgram {
 public:
  LockHoldProgram(std::uint32_t mutex, std::uint32_t hold_steps);
  [[nodiscard]] std::string name() const override { return "lock-hold"; }
  StepResult step(TaskContext& ctx) override;

 private:
  std::uint32_t mutex_;
  std::uint32_t hold_steps_;
  std::uint32_t held_ = 0;
  int phase_ = 0;
};

}  // namespace ptest::pcore
