// Small built-in task programs used by tests and as building blocks; the
// paper's workloads (quicksort, dining philosophers, Fig. 1 spin pair)
// live in ptest/workload.  Each is a thin TaskProgram shell around a
// CoTask coroutine body (see co_task.hpp).
#pragma once

#include <vector>

#include "ptest/pcore/co_task.hpp"

namespace ptest::pcore {

/// Computes forever (never exits); useful for scheduler tests.
class IdleProgram final : public TaskProgram {
 public:
  IdleProgram();
  [[nodiscard]] std::string name() const override { return "idle"; }
  StepResult step(TaskContext& ctx) override;

 private:
  CoTask task_;
};

/// Computes `units` steps then exits successfully.
class FiniteComputeProgram final : public TaskProgram {
 public:
  explicit FiniteComputeProgram(std::uint32_t units);
  [[nodiscard]] std::string name() const override { return "compute"; }
  StepResult step(TaskContext& ctx) override;

 private:
  CoTask task_;
};

/// Replays a fixed list of StepResults (optionally in a loop).
class ScriptProgram final : public TaskProgram {
 public:
  explicit ScriptProgram(std::vector<StepResult> script, bool loop = false);
  [[nodiscard]] std::string name() const override { return "script"; }
  StepResult step(TaskContext& ctx) override;

 private:
  CoTask task_;
};

/// Locks a mutex, holds it for `hold_steps` compute steps, unlocks, exits.
class LockHoldProgram final : public TaskProgram {
 public:
  LockHoldProgram(std::uint32_t mutex, std::uint32_t hold_steps);
  [[nodiscard]] std::string name() const override { return "lock-hold"; }
  StepResult step(TaskContext& ctx) override;

 private:
  CoTask task_;
};

}  // namespace ptest::pcore
