// pCore kernel heap: a first-fit free-list allocator over the DSP's 160 KB
// internal memory, with deferred reclamation ("garbage collection") of
// resources owned by deleted tasks.
//
// pCore frees a deleted task's TCB and stack lazily: task_delete moves the
// task's blocks onto a graveyard list, and the collector sweeps the
// graveyard and coalesces adjacent free blocks when the kernel is idle or
// an allocation would otherwise fail.  This mirrors the "failure of
// garbage collection" the paper's case study 1 exposes: the heap carries a
// fault-injection plan that, when armed, corrupts a block header during a
// sweep under create/delete churn at high task pressure — reproducing a
// latent GC bug that only heavy stress uncovers.
//
// All sizes are in bytes; blocks are 8-byte aligned with a 16-byte header.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ptest::pcore {

/// Ground-truth fault plan (see DESIGN.md §2: the paper reports *that* a GC
/// crash exists; we seed an equivalent latent bug so the experiment has a
/// detectable ground truth).
struct HeapFaultPlan {
  /// Master switch.
  bool gc_corruption = false;
  /// The sweep corrupts a header only after this many graveyard
  /// reclamations have happened in total...
  std::uint32_t churn_threshold = 48;
  /// ...and only while at least this many live allocations exist (the
  /// "16 active tasks" pressure of case study 1; each task holds 2 blocks).
  std::uint32_t live_block_threshold = 24;
};

struct HeapStats {
  std::size_t capacity = 0;
  std::size_t live_bytes = 0;
  std::size_t live_blocks = 0;
  std::size_t free_bytes = 0;
  std::size_t graveyard_blocks = 0;
  std::uint64_t total_allocs = 0;
  std::uint64_t total_frees = 0;
  std::uint64_t gc_runs = 0;
  std::uint64_t coalesced = 0;
};

class KernelHeap {
 public:
  static constexpr std::size_t kDefaultCapacity = 160 * 1024;

  explicit KernelHeap(std::size_t capacity = kDefaultCapacity,
                      HeapFaultPlan fault_plan = {});

  /// Allocates `size` bytes; returns the block offset, or nullopt when out
  /// of memory even after collection.  Detects header corruption and sets
  /// panic() instead of returning.
  [[nodiscard]] std::optional<std::uint32_t> alloc(std::size_t size);

  /// Immediate free (for kernel-internal buffers).
  void free(std::uint32_t offset);

  /// Deferred free: the block is parked on the graveyard until the next
  /// collection (used for deleted tasks' TCB/stack).
  void defer_free(std::uint32_t offset);

  /// Sweeps the graveyard and coalesces free blocks.  This is where the
  /// injected GC bug fires (when armed and thresholds are met).
  void collect();

  /// True once heap-metadata corruption has been detected; the kernel
  /// treats this as a panic.  `panic_reason` describes the detection site.
  [[nodiscard]] bool panicked() const noexcept { return panicked_; }
  [[nodiscard]] const std::string& panic_reason() const noexcept {
    return panic_reason_;
  }

  [[nodiscard]] HeapStats stats() const;

  /// Verifies all block headers; returns false (and sets panic) on
  /// corruption.  Runs in O(blocks).
  bool check_integrity();

  [[nodiscard]] const HeapFaultPlan& fault_plan() const noexcept {
    return fault_plan_;
  }

 private:
  struct Block {
    std::uint32_t magic;
    std::uint32_t size;     // payload bytes
    bool free;
    bool in_graveyard;
  };

  static constexpr std::uint32_t kMagic = 0xbeefcafe;
  static constexpr std::uint32_t kHeader = 16;

  [[nodiscard]] std::size_t index_of(std::uint32_t offset) const;
  void panic(std::string reason);

  std::size_t capacity_;
  HeapFaultPlan fault_plan_;
  // Simulated layout: blocks ordered by offset.  (We model headers as
  // metadata rather than raw bytes; the *behaviour* — fragmentation,
  // coalescing, corruption detection via magic — matches a real free list.)
  std::vector<std::pair<std::uint32_t, Block>> blocks_;  // (offset, block)
  std::vector<std::uint32_t> graveyard_;
  std::uint32_t churn_ = 0;
  bool corruption_armed_fired_ = false;
  bool panicked_ = false;
  std::string panic_reason_;
  HeapStats stats_;
};

}  // namespace ptest::pcore
