#include "ptest/pcore/programs.hpp"

#include <utility>

namespace ptest::pcore {
namespace {

CoTask idle_body() {
  for (;;) co_await compute();
}

CoTask finite_compute_body(std::uint32_t units) {
  for (std::uint32_t i = 0; i < units; ++i) co_await compute();
  co_return 0;
}

CoTask script_body(std::vector<StepResult> script, bool loop) {
  if (!script.empty()) {
    do {
      for (const StepResult& step : script) co_await step;
    } while (loop);
  }
  co_return 0;
}

CoTask lock_hold_body(std::uint32_t mutex, std::uint32_t hold_steps) {
  TaskEnv task = co_await env();
  co_await lock(mutex);
  // Still waiting (kernel re-steps us once ownership transfers).
  while (!task.holds(mutex)) co_await yield();
  for (std::uint32_t held = 0; held < hold_steps; ++held) {
    co_await compute();
  }
  co_await unlock(mutex);
  co_return 0;
}

}  // namespace

IdleProgram::IdleProgram() : task_(idle_body()) {}
StepResult IdleProgram::step(TaskContext& ctx) { return task_.step(ctx); }

FiniteComputeProgram::FiniteComputeProgram(std::uint32_t units)
    : task_(finite_compute_body(units)) {}
StepResult FiniteComputeProgram::step(TaskContext& ctx) {
  return task_.step(ctx);
}

ScriptProgram::ScriptProgram(std::vector<StepResult> script, bool loop)
    : task_(script_body(std::move(script), loop)) {}
StepResult ScriptProgram::step(TaskContext& ctx) { return task_.step(ctx); }

LockHoldProgram::LockHoldProgram(std::uint32_t mutex,
                                 std::uint32_t hold_steps)
    : task_(lock_hold_body(mutex, hold_steps)) {}
StepResult LockHoldProgram::step(TaskContext& ctx) {
  return task_.step(ctx);
}

}  // namespace ptest::pcore
