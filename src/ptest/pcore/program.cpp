#include "ptest/pcore/program.hpp"

#include "ptest/pcore/programs.hpp"

namespace ptest::pcore {

StepResult IdleProgram::step(TaskContext&) { return StepResult::compute(); }

FiniteComputeProgram::FiniteComputeProgram(std::uint32_t units)
    : remaining_(units) {}

StepResult FiniteComputeProgram::step(TaskContext&) {
  if (remaining_ == 0) return StepResult::exit(0);
  --remaining_;
  return StepResult::compute();
}

ScriptProgram::ScriptProgram(std::vector<StepResult> script, bool loop)
    : script_(std::move(script)), loop_(loop) {}

StepResult ScriptProgram::step(TaskContext&) {
  if (pc_ >= script_.size()) {
    if (!loop_ || script_.empty()) return StepResult::exit(0);
    pc_ = 0;
  }
  return script_[pc_++];
}

LockHoldProgram::LockHoldProgram(std::uint32_t mutex, std::uint32_t hold_steps)
    : mutex_(mutex), hold_steps_(hold_steps) {}

StepResult LockHoldProgram::step(TaskContext& ctx) {
  switch (phase_) {
    case 0:
      phase_ = 1;
      return StepResult::lock(mutex_);
    case 1:
      if (!ctx.holds(mutex_)) {
        // Still waiting (kernel re-steps us once ownership transfers).
        return StepResult::yield();
      }
      if (held_ < hold_steps_) {
        ++held_;
        return StepResult::compute();
      }
      phase_ = 2;
      return StepResult::unlock(mutex_);
    default:
      return StepResult::exit(0);
  }
}

}  // namespace ptest::pcore
