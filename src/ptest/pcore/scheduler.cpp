#include "ptest/pcore/scheduler.hpp"

namespace ptest::pcore {

TaskId PriorityScheduler::pick(const std::array<Tcb, kMaxTasks>& tcbs,
                               TaskId current) const {
  // Two passes: first skipping tasks that just yielded (they handed the
  // processor over), then — if nothing else is runnable — including them.
  for (const bool include_yielded : {false, true}) {
    TaskId best = kInvalidTask;
    Priority best_priority = 0;
    for (TaskId i = 0; i < kMaxTasks; ++i) {
      const Tcb& tcb = tcbs[i];
      if (tcb.state != TaskState::kReady &&
          tcb.state != TaskState::kRunning) {
        continue;
      }
      if (!include_yielded && tcb.yield_pending) continue;
      const bool better =
          best == kInvalidTask || tcb.priority > best_priority ||
          // Tie: prefer the incumbent to avoid gratuitous switches.
          (tcb.priority == best_priority && i == current);
      if (better) {
        best = i;
        best_priority = tcb.priority;
      }
    }
    if (best != kInvalidTask) return best;
  }
  return kInvalidTask;
}

void PriorityScheduler::note_dispatch(TaskId previous, TaskId next,
                                      bool previous_runnable) {
  if (next == kInvalidTask || next == previous) return;
  ++context_switches_;
  if (previous != kInvalidTask && previous_runnable) ++preemptions_;
}

}  // namespace ptest::pcore
