#include "ptest/pcore/co_task.hpp"

namespace ptest::pcore {

StepResult CoTask::step(TaskContext& ctx) {
  assert(handle_ != nullptr && "stepping a moved-from CoTask");
  promise_type& promise = handle_.promise();
  if (handle_.done()) {
    // Terminal: repeat the Exit step without resuming, exactly as the
    // explicit-PC machines kept returning exit() from their final phase.
    return promise.pending;
  }
  promise.context = &ctx;
  promise.state = TaskState::kRunning;
  handle_.resume();
  promise.context = nullptr;
  if (promise.error) {
    std::rethrow_exception(std::exchange(promise.error, nullptr));
  }
  return promise.pending;
}

void CoTaskQueue::push(CoTask::promise_type& promise) noexcept {
  assert(promise.queue_next == nullptr && &promise != tail_ &&
         "promise already enqueued");
  promise.queue_next = nullptr;
  if (tail_ != nullptr) {
    tail_->queue_next = &promise;
  } else {
    head_ = &promise;
  }
  tail_ = &promise;
  ++size_;
}

CoTask::promise_type* CoTaskQueue::pop() noexcept {
  if (head_ == nullptr) return nullptr;
  CoTask::promise_type* promise = head_;
  head_ = promise->queue_next;
  if (head_ == nullptr) tail_ = nullptr;
  promise->queue_next = nullptr;
  --size_;
  return promise;
}

}  // namespace ptest::pcore
