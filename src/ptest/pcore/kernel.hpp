// The pCore microkernel simulator — the slave runtime system under test.
//
// Reproduces the behaviour the paper relies on (§IV-A):
//   * up to 16 concurrent tasks, each created with a priority;
//   * preemptive priority-based scheduling;
//   * the six Table I services: task_create (TC), task_delete (TD),
//     task_suspend (TS), task_resume (TR), task_chanprio (TCH),
//     task_yield (TY — "terminate the current running task", i.e. a
//     voluntary exit, which is why the lifecycle regex Eq. (2) ends in
//     TD$ | TY$);
//   * a kernel heap with deferred reclamation (garbage collection) of
//     deleted tasks' TCBs/stacks — the subsystem whose injected latent bug
//     reproduces case study 1;
//   * kernel mutexes for task synchronization (case study 2).
//
// The kernel is a sim::Device: one program step per tick for the running
// task, plus periodic collection.  All services are also callable directly
// (unit tests) — the bridge committee calls them on behalf of remote
// commands.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ptest/pcore/heap.hpp"
#include "ptest/pcore/program.hpp"
#include "ptest/pcore/scheduler.hpp"
#include "ptest/pcore/sync.hpp"
#include "ptest/pcore/task.hpp"
#include "ptest/sim/soc.hpp"
#include "ptest/support/rng.hpp"

namespace ptest::pcore {

enum class Status : std::uint8_t {
  kOk = 0,
  kErrNoSlot,       // all 16 task slots busy
  kErrNoMemory,     // heap exhausted
  kErrBadTask,      // slot empty or stale
  kErrBadState,     // service illegal in the task's current state
  kErrBadMutex,     // unknown mutex / not owner
  kErrPanicked,     // kernel already panicked
  kErrBadProgram,   // unknown program id
};

[[nodiscard]] const char* to_string(Status status) noexcept;

struct KernelConfig {
  std::size_t heap_capacity = KernelHeap::kDefaultCapacity;
  HeapFaultPlan fault_plan{};
  std::size_t stack_bytes = kDefaultStackBytes;
  /// Collect when the graveyard holds at least this many blocks.
  std::size_t gc_graveyard_threshold = 8;
  /// Also collect every this many ticks (0 = never periodic).
  sim::Tick gc_period = 256;
  std::size_t shared_words = 16;
  /// Treat a nonzero program exit code as an assertion failure and panic.
  /// Seeded-bug workloads use this so in-program race detection surfaces
  /// as a slave crash the bug detector classifies.
  bool panic_on_nonzero_exit = false;
  /// ConTest-style scheduling noise: with this probability the scheduler
  /// dispatches a uniformly random runnable task instead of the
  /// highest-priority one.  0 = faithful pCore behaviour.
  double schedule_noise = 0.0;
  std::uint64_t noise_seed = 0xC0FFEEULL;
};

/// Read-only snapshot for the bug detector and tests.
struct TaskSnapshot {
  TaskId id = kInvalidTask;
  TaskState state = TaskState::kFree;
  Priority priority = 0;
  std::string program;
  std::optional<MutexId> waiting_on;
  std::vector<MutexId> holds;
  sim::Tick last_progress = 0;
  std::uint64_t steps = 0;
  std::uint32_t generation = 0;
};

struct KernelSnapshot {
  sim::Tick tick = 0;
  bool panicked = false;
  std::string panic_reason;
  std::vector<TaskSnapshot> tasks;  // live slots only
  std::size_t live_tasks = 0;
  HeapStats heap;
  std::uint64_t context_switches = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t service_calls = 0;
};

class PcoreKernel : public sim::Device {
 public:
  explicit PcoreKernel(const KernelConfig& config = {});

  // --- program registry ----------------------------------------------------
  /// Registers a factory under `program_id`; TC commands reference it.
  void register_program(std::uint32_t program_id,
                        std::function<std::unique_ptr<TaskProgram>(
                            std::uint32_t arg)> factory);
  /// True when a factory is registered under `program_id` — lets scenario
  /// plumbing assert a workload setup actually provides the program its
  /// plan references before any TC command can fail with kErrBadProgram.
  [[nodiscard]] bool has_program(std::uint32_t program_id) const noexcept {
    return programs_.count(program_id) != 0;
  }

  // --- Table I services ----------------------------------------------------
  /// TC: creates a task with `priority` running program `program_id(arg)`.
  /// On success `out_task` receives the slot id.
  Status task_create(std::uint32_t program_id, std::uint32_t arg,
                     Priority priority, TaskId& out_task);
  /// TD: force-deletes a task in any live state.  Held mutexes are
  /// released (handed to waiters); TCB/stack go to the heap graveyard.
  Status task_delete(TaskId task);
  /// TS: suspends a Ready/Running task.
  Status task_suspend(TaskId task);
  /// TR: resumes a Suspended task.
  Status task_resume(TaskId task);
  /// TCH: changes a live task's priority.
  Status task_chanprio(TaskId task, Priority priority);
  /// TY: voluntary termination ("terminate the current running task").
  /// Remote form: requests graceful exit of `task`; legal from
  /// Ready/Running/Suspended.  Blocked tasks cannot exit gracefully.
  Status task_yield(TaskId task);

  // --- mutexes (used by task programs) -------------------------------------
  /// Creates a mutex; returns its id.  Throws when out of mutexes (test
  /// configuration error, not a runtime condition).
  MutexId mutex_create();

  // --- execution ------------------------------------------------------------
  bool tick(sim::Soc& soc) override;

  // --- inspection ------------------------------------------------------------
  [[nodiscard]] KernelSnapshot snapshot() const;
  [[nodiscard]] bool panicked() const noexcept { return panicked_; }
  [[nodiscard]] const std::string& panic_reason() const noexcept {
    return panic_reason_;
  }
  [[nodiscard]] std::size_t live_task_count() const noexcept;
  [[nodiscard]] const Tcb& tcb(TaskId task) const { return tcbs_.at(task); }
  [[nodiscard]] const KMutex& mutex(MutexId id) const {
    return mutexes_.at(id);
  }
  [[nodiscard]] KernelHeap& heap() noexcept { return heap_; }
  [[nodiscard]] sim::Tick current_tick() const noexcept { return tick_; }
  /// Shared user words, also reachable from master threads through the
  /// kernel (models the Fig. 1 shared-memory flags).
  [[nodiscard]] std::int32_t shared_word(std::size_t index) const;
  void set_shared_word(std::size_t index, std::int32_t value);

  /// Forces a kernel panic (used by fault-injection tests).
  void force_panic(std::string reason);

 private:
  class ContextImpl;

  void panic(std::string reason);
  void release_held_mutexes(TaskId task);
  void reclaim(TaskId task, TaskState final_state);
  Status check_live(TaskId task) const;
  void wake_next_waiter(MutexId id);
  void run_scheduler(sim::Soc& soc);
  void maybe_collect(sim::Soc& soc);

  KernelConfig config_;
  KernelHeap heap_;
  std::array<Tcb, kMaxTasks> tcbs_{};
  std::array<KMutex, kMaxMutexes> mutexes_{};
  std::size_t mutex_count_ = 0;
  PriorityScheduler scheduler_;
  std::map<std::uint32_t,
           std::function<std::unique_ptr<TaskProgram>(std::uint32_t)>>
      programs_;
  std::vector<std::int32_t> shared_;
  support::Rng noise_rng_{0};
  TaskId running_ = kInvalidTask;
  bool panicked_ = false;
  std::string panic_reason_;
  sim::Tick tick_ = 0;
  sim::Tick last_gc_ = 0;
  std::uint64_t service_calls_ = 0;
};

}  // namespace ptest::pcore
