// Kernel mutexes for pCore tasks (the "mutually exclusive shared
// resources" of the paper's dining-philosophers case study 2).
//
// Ownership transfer on wake: unlock hands the mutex to the
// highest-priority waiter directly, so a woken task resumes already
// holding the lock (see program.hpp).  The wait queue and owner are fully
// inspectable — the bug detector builds its wait-for graph from them.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ptest/pcore/task.hpp"

namespace ptest::pcore {

using MutexId = std::uint8_t;
inline constexpr std::size_t kMaxMutexes = 32;

struct KMutex {
  bool exists = false;
  std::optional<TaskId> owner;
  /// Blocked tasks in arrival order; the kernel picks the highest-priority
  /// one on unlock (ties broken by arrival).
  std::vector<TaskId> waiters;
  std::uint64_t acquisitions = 0;
  std::uint64_t contentions = 0;
};

}  // namespace ptest::pcore
