// Preemptive priority-based scheduler of the pCore microkernel: "always
// schedules the task with highest priority to run" (paper §IV-A).
//
// Decision function over the TCB table: among Ready/Running tasks pick the
// highest priority; ties break toward the currently running task (no
// gratuitous switch), then the lowest slot.  A newly readied
// higher-priority task therefore preempts at the next tick boundary.
#pragma once

#include <array>
#include <cstdint>

#include "ptest/pcore/task.hpp"

namespace ptest::pcore {

class PriorityScheduler {
 public:
  /// Picks the next task to run; kInvalidTask when none is runnable.
  [[nodiscard]] TaskId pick(const std::array<Tcb, kMaxTasks>& tcbs,
                            TaskId current) const;

  [[nodiscard]] std::uint64_t context_switches() const noexcept {
    return context_switches_;
  }
  [[nodiscard]] std::uint64_t preemptions() const noexcept {
    return preemptions_;
  }

  /// Called by the kernel after each scheduling decision so the counters
  /// reflect actual switches.
  void note_dispatch(TaskId previous, TaskId next, bool previous_runnable);

 private:
  std::uint64_t context_switches_ = 0;
  std::uint64_t preemptions_ = 0;
};

}  // namespace ptest::pcore
