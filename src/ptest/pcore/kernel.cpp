#include "ptest/pcore/kernel.hpp"

#include <algorithm>
#include <stdexcept>

namespace ptest::pcore {

const char* to_string(TaskState state) noexcept {
  switch (state) {
    case TaskState::kFree: return "free";
    case TaskState::kReady: return "ready";
    case TaskState::kRunning: return "running";
    case TaskState::kSuspended: return "suspended";
    case TaskState::kBlocked: return "blocked";
    case TaskState::kTerminated: return "terminated";
  }
  return "?";
}

const char* to_string(Status status) noexcept {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kErrNoSlot: return "no-slot";
    case Status::kErrNoMemory: return "no-memory";
    case Status::kErrBadTask: return "bad-task";
    case Status::kErrBadState: return "bad-state";
    case Status::kErrBadMutex: return "bad-mutex";
    case Status::kErrPanicked: return "panicked";
    case Status::kErrBadProgram: return "bad-program";
  }
  return "?";
}

// --- TaskContext implementation ---------------------------------------------

class PcoreKernel::ContextImpl final : public TaskContext {
 public:
  ContextImpl(PcoreKernel& kernel, TaskId task)
      : kernel_(kernel), task_(task) {}

  [[nodiscard]] std::uint8_t task_id() const override { return task_; }
  [[nodiscard]] sim::Tick now() const override { return kernel_.tick_; }

  [[nodiscard]] bool holds(std::uint32_t mutex) const override {
    return mutex < kernel_.mutex_count_ &&
           kernel_.mutexes_[mutex].owner == task_;
  }

  [[nodiscard]] std::int32_t shared(std::size_t index) const override {
    return kernel_.shared_word(index);
  }
  void set_shared(std::size_t index, std::int32_t value) override {
    kernel_.set_shared_word(index, value);
  }

 private:
  PcoreKernel& kernel_;
  TaskId task_;
};

// --- construction ------------------------------------------------------------

PcoreKernel::PcoreKernel(const KernelConfig& config)
    : config_(config),
      heap_(config.heap_capacity, config.fault_plan),
      shared_(config.shared_words, 0),
      noise_rng_(config.noise_seed) {}

void PcoreKernel::register_program(
    std::uint32_t program_id,
    std::function<std::unique_ptr<TaskProgram>(std::uint32_t)> factory) {
  programs_[program_id] = std::move(factory);
}

// --- helpers ------------------------------------------------------------------

void PcoreKernel::panic(std::string reason) {
  if (panicked_) return;
  panicked_ = true;
  panic_reason_ = std::move(reason);
}

void PcoreKernel::force_panic(std::string reason) {
  panic(std::move(reason));
}

Status PcoreKernel::check_live(TaskId task) const {
  if (task >= kMaxTasks) return Status::kErrBadTask;
  const TaskState s = tcbs_[task].state;
  if (s == TaskState::kFree || s == TaskState::kTerminated) {
    return Status::kErrBadTask;
  }
  return Status::kOk;
}

std::size_t PcoreKernel::live_task_count() const noexcept {
  std::size_t n = 0;
  for (const Tcb& tcb : tcbs_) {
    if (tcb.state != TaskState::kFree && tcb.state != TaskState::kTerminated) {
      ++n;
    }
  }
  return n;
}

std::int32_t PcoreKernel::shared_word(std::size_t index) const {
  if (index >= shared_.size()) {
    throw std::out_of_range("PcoreKernel: shared word index out of range");
  }
  return shared_[index];
}

void PcoreKernel::set_shared_word(std::size_t index, std::int32_t value) {
  if (index >= shared_.size()) {
    throw std::out_of_range("PcoreKernel: shared word index out of range");
  }
  shared_[index] = value;
}

// --- Table I services ----------------------------------------------------------

Status PcoreKernel::task_create(std::uint32_t program_id, std::uint32_t arg,
                                Priority priority, TaskId& out_task) {
  ++service_calls_;
  if (panicked_) return Status::kErrPanicked;
  const auto factory = programs_.find(program_id);
  if (factory == programs_.end()) return Status::kErrBadProgram;

  TaskId slot = kInvalidTask;
  for (TaskId i = 0; i < kMaxTasks; ++i) {
    if (tcbs_[i].state == TaskState::kFree) {
      slot = i;
      break;
    }
  }
  if (slot == kInvalidTask) return Status::kErrNoSlot;

  const auto tcb_block = heap_.alloc(kTcbBytes);
  if (heap_.panicked()) {
    panic("task_create: " + heap_.panic_reason());
    return Status::kErrPanicked;
  }
  if (!tcb_block) return Status::kErrNoMemory;
  const auto stack_block = heap_.alloc(config_.stack_bytes);
  if (heap_.panicked()) {
    panic("task_create: " + heap_.panic_reason());
    return Status::kErrPanicked;
  }
  if (!stack_block) {
    heap_.free(*tcb_block);
    return Status::kErrNoMemory;
  }

  Tcb& tcb = tcbs_[slot];
  tcb.state = TaskState::kReady;
  tcb.priority = priority;
  tcb.program = factory->second(arg);
  tcb.tcb_block = *tcb_block;
  tcb.stack_block = *stack_block;
  tcb.waiting_on.reset();
  tcb.created_at = tick_;
  tcb.last_progress = tick_;
  tcb.steps = 0;
  ++tcb.generation;
  out_task = slot;
  return Status::kOk;
}

void PcoreKernel::release_held_mutexes(TaskId task) {
  for (MutexId id = 0; id < mutex_count_; ++id) {
    if (mutexes_[id].owner == task) {
      mutexes_[id].owner.reset();
      wake_next_waiter(id);
    }
    auto& waiters = mutexes_[id].waiters;
    waiters.erase(std::remove(waiters.begin(), waiters.end(), task),
                  waiters.end());
  }
}

void PcoreKernel::reclaim(TaskId task, TaskState final_state) {
  Tcb& tcb = tcbs_[task];
  release_held_mutexes(task);
  heap_.defer_free(tcb.tcb_block);
  heap_.defer_free(tcb.stack_block);
  if (heap_.panicked()) panic("reclaim: " + heap_.panic_reason());
  tcb.program.reset();
  tcb.state = final_state;
  tcb.waiting_on.reset();
  if (running_ == task) running_ = kInvalidTask;
}

Status PcoreKernel::task_delete(TaskId task) {
  ++service_calls_;
  if (panicked_) return Status::kErrPanicked;
  if (const Status s = check_live(task); s != Status::kOk) return s;
  reclaim(task, TaskState::kFree);
  return Status::kOk;
}

Status PcoreKernel::task_suspend(TaskId task) {
  ++service_calls_;
  if (panicked_) return Status::kErrPanicked;
  if (const Status s = check_live(task); s != Status::kOk) return s;
  Tcb& tcb = tcbs_[task];
  if (tcb.state != TaskState::kReady && tcb.state != TaskState::kRunning) {
    return Status::kErrBadState;
  }
  if (running_ == task) running_ = kInvalidTask;
  tcb.state = TaskState::kSuspended;
  return Status::kOk;
}

Status PcoreKernel::task_resume(TaskId task) {
  ++service_calls_;
  if (panicked_) return Status::kErrPanicked;
  if (const Status s = check_live(task); s != Status::kOk) return s;
  Tcb& tcb = tcbs_[task];
  if (tcb.state != TaskState::kSuspended) return Status::kErrBadState;
  tcb.state = TaskState::kReady;
  return Status::kOk;
}

Status PcoreKernel::task_chanprio(TaskId task, Priority priority) {
  ++service_calls_;
  if (panicked_) return Status::kErrPanicked;
  if (const Status s = check_live(task); s != Status::kOk) return s;
  tcbs_[task].priority = priority;
  return Status::kOk;
}

Status PcoreKernel::task_yield(TaskId task) {
  ++service_calls_;
  if (panicked_) return Status::kErrPanicked;
  if (const Status s = check_live(task); s != Status::kOk) return s;
  Tcb& tcb = tcbs_[task];
  if (tcb.state == TaskState::kBlocked) return Status::kErrBadState;
  reclaim(task, TaskState::kFree);
  return Status::kOk;
}

// --- mutexes -------------------------------------------------------------------

MutexId PcoreKernel::mutex_create() {
  if (mutex_count_ >= kMaxMutexes) {
    throw std::length_error("PcoreKernel: out of mutexes");
  }
  const auto id = static_cast<MutexId>(mutex_count_++);
  mutexes_[id].exists = true;
  return id;
}

void PcoreKernel::wake_next_waiter(MutexId id) {
  KMutex& mutex = mutexes_[id];
  if (mutex.owner || mutex.waiters.empty()) return;
  // Highest priority first; ties by arrival order.
  const auto best = std::max_element(
      mutex.waiters.begin(), mutex.waiters.end(),
      [this](TaskId a, TaskId b) {
        return tcbs_[a].priority < tcbs_[b].priority;
      });
  const TaskId winner = *best;
  mutex.waiters.erase(best);
  mutex.owner = winner;
  ++mutex.acquisitions;
  Tcb& tcb = tcbs_[winner];
  tcb.waiting_on.reset();
  tcb.state = TaskState::kReady;
}

// --- execution -------------------------------------------------------------------

void PcoreKernel::maybe_collect(sim::Soc& soc) {
  const bool graveyard_full =
      heap_.stats().graveyard_blocks >= config_.gc_graveyard_threshold;
  const bool periodic = config_.gc_period != 0 &&
                        tick_ - last_gc_ >= config_.gc_period;
  if (!graveyard_full && !periodic) return;
  last_gc_ = tick_;
  heap_.collect();
  if (heap_.panicked()) {
    panic("gc: " + heap_.panic_reason());
    soc.record(sim::TraceCategory::kFault, "kernel panic: " + panic_reason_);
  }
}

void PcoreKernel::run_scheduler(sim::Soc& soc) {
  const TaskId previous = running_;
  const bool previous_runnable =
      previous != kInvalidTask &&
      (tcbs_[previous].state == TaskState::kRunning ||
       tcbs_[previous].state == TaskState::kReady);
  TaskId next = scheduler_.pick(tcbs_, running_);
  if (next != kInvalidTask && config_.schedule_noise > 0.0 &&
      noise_rng_.chance(config_.schedule_noise)) {
    // ConTest-style perturbation: dispatch a random runnable task.
    std::array<TaskId, kMaxTasks> runnable{};
    std::size_t count = 0;
    for (TaskId i = 0; i < kMaxTasks; ++i) {
      if (tcbs_[i].state == TaskState::kReady ||
          tcbs_[i].state == TaskState::kRunning) {
        runnable[count++] = i;
      }
    }
    if (count > 0) next = runnable[noise_rng_.below(count)];
  }
  scheduler_.note_dispatch(previous, next, previous_runnable);
  if (previous != kInvalidTask && previous != next &&
      tcbs_[previous].state == TaskState::kRunning) {
    tcbs_[previous].state = TaskState::kReady;
  }
  running_ = next;
  if (next == kInvalidTask) return;

  // A dispatch consumes every outstanding yield: each yielder has now been
  // passed over once, which is all the paper's yield() promises.
  for (Tcb& t : tcbs_) t.yield_pending = false;
  Tcb& tcb = tcbs_[next];
  tcb.state = TaskState::kRunning;
  ContextImpl ctx(*this, next);
  const StepResult result = tcb.program->step(ctx);
  ++tcb.steps;
  tcb.last_progress = tick_;

  switch (result.kind) {
    case StepKind::kCompute:
      break;  // consumed its slice
    case StepKind::kYield:
      tcb.state = TaskState::kReady;
      tcb.yield_pending = true;
      running_ = kInvalidTask;
      break;
    case StepKind::kLock: {
      const std::uint32_t id = result.arg;
      if (id >= mutex_count_) {
        panic("task " + std::to_string(next) + " locked unknown mutex " +
              std::to_string(id));
        return;
      }
      KMutex& mutex = mutexes_[id];
      if (!mutex.owner) {
        mutex.owner = next;
        ++mutex.acquisitions;
      } else if (mutex.owner == next) {
        // Recursive lock is a program bug; treat as no-op with trace.
        soc.record(sim::TraceCategory::kKernel,
                   "task " + std::to_string(next) +
                       " recursive lock of mutex " + std::to_string(id));
      } else {
        ++mutex.contentions;
        mutex.waiters.push_back(next);
        tcb.state = TaskState::kBlocked;
        tcb.waiting_on = static_cast<MutexId>(id);
        running_ = kInvalidTask;
      }
      break;
    }
    case StepKind::kUnlock: {
      const std::uint32_t id = result.arg;
      if (id >= mutex_count_ || mutexes_[id].owner != next) {
        panic("task " + std::to_string(next) + " unlocked mutex " +
              std::to_string(id) + " it does not own");
        return;
      }
      mutexes_[id].owner.reset();
      wake_next_waiter(id);
      break;
    }
    case StepKind::kExit:
      soc.record(sim::TraceCategory::kKernel,
                 "task " + std::to_string(next) + " exited with code " +
                     std::to_string(result.arg));
      if (result.arg != 0 && config_.panic_on_nonzero_exit) {
        panic("task " + std::to_string(next) +
              " failed assertion (exit code " + std::to_string(result.arg) +
              ")");
        return;
      }
      reclaim(next, TaskState::kFree);
      break;
  }
}

bool PcoreKernel::tick(sim::Soc& soc) {
  tick_ = soc.now();
  if (panicked_) return true;  // detector decides when to stop
  maybe_collect(soc);
  if (panicked_) return true;
  run_scheduler(soc);
  return true;
}

// --- inspection --------------------------------------------------------------------

KernelSnapshot PcoreKernel::snapshot() const {
  KernelSnapshot snap;
  snap.tick = tick_;
  snap.panicked = panicked_;
  snap.panic_reason = panic_reason_;
  snap.heap = heap_.stats();
  snap.context_switches = scheduler_.context_switches();
  snap.preemptions = scheduler_.preemptions();
  snap.service_calls = service_calls_;
  for (TaskId i = 0; i < kMaxTasks; ++i) {
    const Tcb& tcb = tcbs_[i];
    if (tcb.state == TaskState::kFree) continue;
    TaskSnapshot t;
    t.id = i;
    t.state = tcb.state;
    t.priority = tcb.priority;
    t.program = tcb.program ? tcb.program->name() : "";
    t.waiting_on = tcb.waiting_on;
    for (MutexId m = 0; m < mutex_count_; ++m) {
      if (mutexes_[m].owner == i) t.holds.push_back(m);
    }
    t.last_progress = tcb.last_progress;
    t.steps = tcb.steps;
    t.generation = tcb.generation;
    snap.tasks.push_back(std::move(t));
    ++snap.live_tasks;
  }
  return snap;
}

}  // namespace ptest::pcore
