// Task control blocks for the pCore microkernel simulator.
//
// pCore supports up to 16 concurrent tasks on the DSP; each is "typically
// forked with a unique priority by a thread in Linux" (paper §IV-A).  A
// task slot cycles through Free -> Ready/Running/Suspended/Blocked ->
// Terminated -> Free; its TCB and 512-byte stack live in the kernel heap
// and are reclaimed by the collector after deletion.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "ptest/pcore/program.hpp"
#include "ptest/sim/clock.hpp"

namespace ptest::pcore {

using TaskId = std::uint8_t;
inline constexpr TaskId kInvalidTask = 0xff;
inline constexpr std::size_t kMaxTasks = 16;
inline constexpr std::size_t kDefaultStackBytes = 512;
inline constexpr std::size_t kTcbBytes = 64;

using Priority = std::uint8_t;  // higher value runs first

enum class TaskState : std::uint8_t {
  kFree,        // slot unused
  kReady,       // runnable, waiting for the CPU
  kRunning,     // currently scheduled
  kSuspended,   // stopped via task_suspend, resumable via task_resume
  kBlocked,     // waiting on a mutex/semaphore
  kTerminated,  // finished; resources parked on the heap graveyard
};

[[nodiscard]] const char* to_string(TaskState state) noexcept;

class TaskProgram;  // program.hpp

struct Tcb {
  TaskState state = TaskState::kFree;
  Priority priority = 0;
  std::unique_ptr<TaskProgram> program;
  /// Heap offsets of the TCB and stack blocks (reclaimed on delete).
  std::uint32_t tcb_block = 0;
  std::uint32_t stack_block = 0;
  /// Mutex the task is blocked on, if any.
  std::optional<std::uint8_t> waiting_on;
  /// Set when the task voluntarily yielded: the scheduler passes over it
  /// once so lower-priority tasks get the processor ("the function yield()
  /// means that the current process yields the processor to other waiting
  /// processes", paper §II-A — Fig. 1's b c g h alternation depends on it).
  bool yield_pending = false;
  /// Bookkeeping for the bug detector and for Table I accounting.
  sim::Tick created_at = 0;
  sim::Tick last_progress = 0;  // last tick the program made a step
  std::uint64_t steps = 0;
  /// Increments every time the slot is reused; lets remote handles detect
  /// stale task references.
  std::uint32_t generation = 0;
};

}  // namespace ptest::pcore
