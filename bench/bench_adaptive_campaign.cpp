// Adaptive campaign (extension of §V future work): pTest's epsilon-greedy
// campaign allocates a fixed session budget across (op, distribution) arms
// based on observed detections, vs. a uniform split of the same budget.
// Expected shape: the adaptive policy concentrates runs on productive arms
// and finds at least as many bugs per budget.
#include <cstdio>

#include "harness.hpp"
#include "ptest/core/campaign.hpp"
#include "ptest/workload/philosophers.hpp"

namespace {

using namespace ptest;

const char* kFig5 =
    "TC -> TCH = 0.6; TC -> TS = 0.2; TC -> TD = 0.1; TC -> TY = 0.1;"
    "TCH -> TCH = 0.6; TCH -> TS = 0.2; TCH -> TD = 0.1; TCH -> TY = 0.1;"
    "TS -> TR = 1.0;"
    "TR -> TCH = 0.4; TR -> TS = 0.3; TR -> TY = 0.2; TR -> TD = 0.1";

const char* kSuspendHeavy =
    "TC -> TS = 0.8; TC -> TCH = 0.1; TC -> TD = 0.05; TC -> TY = 0.05;"
    "TCH -> TS = 0.8; TCH -> TCH = 0.1; TCH -> TD = 0.05; TCH -> TY = 0.05;"
    "TS -> TR = 1.0;"
    "TR -> TS = 0.8; TR -> TCH = 0.1; TR -> TD = 0.05; TR -> TY = 0.05";

core::PtestConfig base_config() {
  core::PtestConfig config;
  config.n = 3;
  config.s = 10;
  config.program_id = workload::kPhilosopherProgramId;
  config.max_ticks = 100000;
  config.command_spacing = 12;
  return config;
}

std::vector<core::CampaignArm> arms() {
  return {
      {"sequential/uniform", pattern::MergeOp::kSequential, ""},
      {"round-robin/fig5", pattern::MergeOp::kRoundRobin, kFig5},
      {"cyclic/fig5", pattern::MergeOp::kCyclic, kFig5},
      {"round-robin/suspend-heavy", pattern::MergeOp::kRoundRobin,
       kSuspendHeavy},
  };
}

void print_table() {
  const core::WorkloadSetup setup = [](pcore::PcoreKernel& kernel) {
    (void)workload::register_philosophers(kernel, /*buggy=*/true,
                                          /*meals=*/500);
  };
  std::printf("=== Adaptive campaign: 64-session budget over 4 arms ===\n");
  for (const double epsilon : {1.0, 0.15}) {
    core::CampaignOptions options;
    options.budget = 64;
    options.epsilon = epsilon;  // 1.0 = uniform (non-adaptive) control
    options.warmup_per_arm = 2;
    options.target = core::BugKind::kDeadlock;
    core::Campaign campaign(base_config(), arms(), setup, options);
    const core::CampaignResult result = campaign.run();
    std::printf("policy %-22s: %zu detections / %zu runs\n",
                epsilon >= 1.0 ? "uniform (epsilon=1.0)"
                               : "adaptive (epsilon=0.15)",
                result.total_detections, result.total_runs);
    for (std::size_t i = 0; i < campaign.arms().size(); ++i) {
      std::printf("  %-28s runs=%-3zu detections=%zu (rate %.2f)%s\n",
                  campaign.arms()[i].name.c_str(), result.arm_stats[i].runs,
                  result.arm_stats[i].detections,
                  result.arm_stats[i].detection_rate(),
                  i == result.best_arm ? "  <- best" : "");
    }
  }
  std::printf("\n");
}

const int registered = [] {
  bench::register_report("adaptive_campaign", print_table);

  bench::register_benchmark(
      "adaptive_campaign/campaign_run", [](bench::Context& ctx) {
        const core::WorkloadSetup setup = [](pcore::PcoreKernel& kernel) {
          (void)workload::register_philosophers(kernel, true, 500);
        };
        core::CampaignOptions options;
        options.budget = ctx.scaled<std::size_t>(16, 4);
        core::CampaignResult last;
        ctx.measure([&] {
          core::Campaign campaign(base_config(), arms(), setup, options);
          last = campaign.run();
          bench::do_not_optimize(last);
        });
        ctx.set_items_per_call(static_cast<double>(options.budget));
        ctx.set_counter("sessions_per_sec",
                        last.metrics.sessions_per_second());
      });
  return 0;
}();

}  // namespace
