// Ablation (paper §V future work): "the replicated test patterns can
// reduce the effectiveness of pTest."
// Measures replica rates of the raw generator at several pattern sizes,
// and the model-coverage reached per command budget with and without
// duplicate suppression.
#include <cstdio>

#include "harness.hpp"
#include "ptest/bridge/protocol.hpp"
#include "ptest/pattern/coverage.hpp"
#include "ptest/pattern/dedup.hpp"
#include "ptest/pattern/generator.hpp"

namespace {

using namespace ptest;

struct Model {
  pfa::Alphabet alphabet;
  pfa::Pfa pfa;
  Model() : pfa(build()) {}
  pfa::Pfa build() {
    bridge::intern_service_alphabet(alphabet);
    const pfa::Regex re = pfa::Regex::parse(
        "TC((TCH)* | TS TR (TCH)*)* (TD$ | TY$)", alphabet);
    return pfa::Pfa::from_regex(re, pfa::DistributionSpec{}, alphabet);
  }
};

void print_tables() {
  Model model;
  std::printf("=== Ablation: duplicate patterns (1000 samples per row) "
              "===\n");
  std::printf("%-6s | %-14s | %-12s\n", "s", "unique/1000", "replicas");
  for (const std::size_t s : {2u, 4u, 6u, 8u, 12u, 16u}) {
    pattern::PatternGenerator generator(model.pfa, {.size = s},
                                        support::Rng(17));
    pattern::PatternDeduper deduper;
    for (int i = 0; i < 1000; ++i) (void)deduper.insert(generator.generate());
    std::printf("%6zu | %14zu | %12llu\n", s, deduper.unique_count(),
                static_cast<unsigned long long>(deduper.rejected_count()));
  }

  std::printf("\ncoverage per budget of 32 issued patterns:\n");
  std::printf("%-10s | %-20s\n", "dedup", "n-grams observed");
  for (const bool dedup : {false, true}) {
    pattern::PatternGenerator generator(model.pfa, {.size = 4},
                                        support::Rng(23));
    pattern::CoverageTracker tracker(model.pfa);
    pattern::PatternDeduper deduper;
    int issued = 0;
    int sampled = 0;
    while (issued < 32 && sampled < 10000) {
      ++sampled;
      const auto pattern = generator.generate();
      if (dedup && !deduper.insert(pattern)) continue;
      tracker.observe(pattern);
      ++issued;
    }
    std::printf("%-10s | %zu distinct 3-grams (from %d samples)\n",
                dedup ? "on" : "off", tracker.report().ngrams_observed,
                sampled);
  }
  std::printf("(expected shape: dedup spends the same budget on more "
              "distinct behaviours)\n\n");
}

const int registered = [] {
  bench::register_report("ablation_dedup", print_tables);

  bench::register_benchmark("ablation_dedup/insert", [](bench::Context& ctx) {
    Model model;
    pattern::PatternGenerator generator(model.pfa, {.size = 8},
                                        support::Rng(3));
    std::vector<pattern::TestPattern> patterns = generator.generate(4096);
    pattern::PatternDeduper deduper;
    std::size_t i = 0;
    ctx.measure([&] {
      bench::do_not_optimize(deduper.insert(patterns[i++ % patterns.size()]));
    });
  });
  return 0;
}();

}  // namespace
