// Shared main() for every bench binary.  Each bench_*.cpp registers its
// benchmarks/reports at static-init time; linking N of them plus this
// file yields a binary running those N suites under the uniform CLI —
// bench_all links all of them.
#include "harness.hpp"

int main(int argc, char** argv) {
  return ptest::bench::run_main(argc, argv);
}
