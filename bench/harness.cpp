#include "harness.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <stdexcept>

#include "ptest/obs/trace.hpp"
#include "ptest/support/json.hpp"

// Build provenance baked in by bench/CMakeLists.txt so every
// BENCH_results.json records what produced it.
#ifndef PTEST_GIT_SHA
#define PTEST_GIT_SHA "unknown"
#endif
#ifndef PTEST_BUILD_FLAGS
#define PTEST_BUILD_FLAGS "unknown"
#endif
#ifndef PTEST_COMPILER
#define PTEST_COMPILER "unknown"
#endif

namespace ptest::bench {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

Stats compute_stats(std::vector<double> samples) {
  Stats stats;
  if (samples.empty()) return stats;
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  stats.min = samples.front();
  stats.max = samples.back();
  double sum = 0.0;
  for (const double s : samples) sum += s;
  stats.mean = sum / static_cast<double>(n);
  stats.median = n % 2 == 1
                     ? samples[n / 2]
                     : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  // Nearest-rank p95: smallest sample >= 95% of the distribution.
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(0.95 * static_cast<double>(n)));
  stats.p95 = samples[rank == 0 ? 0 : rank - 1];
  double sq = 0.0;
  for (const double s : samples) sq += (s - stats.mean) * (s - stats.mean);
  stats.stddev = std::sqrt(sq / static_cast<double>(n));
  return stats;
}

void Context::measure(const std::function<void()>& fn) {
  if (!samples_.empty()) {
    throw std::logic_error("Context::measure called twice in one benchmark");
  }

  // Warmup: untimed, and (outside smoke) the last call estimates how
  // many inner iterations one sample needs to dominate clock noise.
  // --warmup 0 makes no untimed call at all — the first timed sample is
  // genuinely cold — which also leaves no estimate, so batching stays
  // at 1 rather than absorbing the cold call into a warmup it was told
  // not to run.
  double estimate = 0.0;
  for (int i = 0; i < warmup_; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    estimate = seconds_since(start);
  }

  inner_iterations_ = 1;
  if (!smoke_ && estimate > 0.0 && estimate < min_sample_seconds_) {
    constexpr std::uint64_t kMaxInner = 10000;
    inner_iterations_ = std::min<std::uint64_t>(
        kMaxInner,
        static_cast<std::uint64_t>(min_sample_seconds_ / estimate) + 1);
  }

  samples_.reserve(static_cast<std::size_t>(repetitions_));
  for (int rep = 0; rep < repetitions_; ++rep) {
    obs::TraceSpan rep_span(trace_name_);
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < inner_iterations_; ++i) fn();
    samples_.push_back(seconds_since(start));
  }
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

void Registry::add(std::string name, BenchFn fn) {
  benchmarks_.push_back({std::move(name), std::move(fn)});
}

void Registry::add_report(std::string name, std::function<void()> fn) {
  reports_.push_back({std::move(name), std::move(fn)});
}

int register_benchmark(std::string name, BenchFn fn) {
  Registry::global().add(std::move(name), std::move(fn));
  return 0;
}

int register_report(std::string name, std::function<void()> fn) {
  Registry::global().add_report(std::move(name), std::move(fn));
  return 0;
}

bool parse_args(int argc, const char* const* argv, Options& options,
                std::string& error) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (flag == "--filter") {
      const char* v = value();
      if (!v) { error = "--filter needs a value"; return false; }
      options.filter = v;
    } else if (flag == "--repetitions") {
      const char* v = value();
      if (!v) { error = "--repetitions needs a value"; return false; }
      options.repetitions = std::atoi(v);
      if (options.repetitions < 1) {
        error = "--repetitions must be >= 1";
        return false;
      }
    } else if (flag == "--warmup") {
      const char* v = value();
      if (!v) { error = "--warmup needs a value"; return false; }
      options.warmup = std::atoi(v);
      if (options.warmup < 0) { error = "--warmup must be >= 0"; return false; }
    } else if (flag == "--smoke") {
      options.smoke = true;
    } else if (flag == "--json") {
      const char* v = value();
      if (!v) { error = "--json needs a path"; return false; }
      options.json_path = v;
    } else if (flag == "--list") {
      options.list = true;
    } else if (flag == "--tables") {
      options.run_reports = 1;
    } else if (flag == "--no-tables") {
      options.run_reports = 0;
    } else if (flag == "--help" || flag == "-h") {
      error.clear();  // run_main treats empty error + false as "show usage"
      return false;
    } else {
      error = "unknown flag '" + flag + "'";
      return false;
    }
  }
  return true;
}

RunSummary run_benchmarks(const Registry& registry, const Options& options) {
  RunSummary summary;
  summary.options = options;

  if (options.reports_enabled()) {
    for (const Report& report : registry.reports()) {
      if (!options.filter.empty() &&
          report.name.find(options.filter) == std::string::npos) {
        continue;
      }
      report.fn();
    }
  }

  for (const Benchmark& benchmark : registry.benchmarks()) {
    if (!options.filter.empty() &&
        benchmark.name.find(options.filter) == std::string::npos) {
      continue;
    }
    Context context(options.smoke, options.effective_repetitions(),
                    options.effective_warmup(), options.min_sample_seconds);
    // The registry outlives every drain, so its name storage satisfies
    // the recorder's static-lifetime requirement.
    context.set_trace_name(benchmark.name.c_str());
    benchmark.fn(context);

    BenchmarkResult result;
    result.name = benchmark.name;
    result.repetitions = static_cast<int>(context.samples().size());
    result.inner_iterations = context.inner_iterations();
    // Per-sample seconds -> per-call milliseconds, so numbers stay
    // comparable when the harness picks different batch sizes.
    std::vector<double> per_call_ms;
    per_call_ms.reserve(context.samples().size());
    for (const double s : context.samples()) {
      per_call_ms.push_back(s * 1e3 /
                            static_cast<double>(context.inner_iterations()));
    }
    result.wall_ms = compute_stats(std::move(per_call_ms));
    if (context.items_per_call() > 0.0 && result.wall_ms.median > 0.0) {
      result.items_per_second =
          context.items_per_call() / (result.wall_ms.median * 1e-3);
    }
    result.counters = context.counters();
    summary.results.push_back(std::move(result));
  }
  return summary;
}

void write_json(const RunSummary& summary, std::ostream& out) {
  support::JsonWriter json;
  json.begin_object();
  json.key("schema_version").value(std::int64_t{1});
  json.key("git_sha").value(PTEST_GIT_SHA);
  json.key("build_flags").value(PTEST_BUILD_FLAGS);
  json.key("compiler").value(PTEST_COMPILER);
  json.key("smoke").value(summary.options.smoke);
  json.key("repetitions").value(
      std::int64_t{summary.options.effective_repetitions()});
  json.key("benchmarks").begin_object();
  for (const BenchmarkResult& result : summary.results) {
    json.key(result.name).begin_object();
    json.key("repetitions").value(std::int64_t{result.repetitions});
    json.key("inner_iterations").value(result.inner_iterations);
    json.key("wall_ms").begin_object();
    json.key("min").value(result.wall_ms.min);
    json.key("median").value(result.wall_ms.median);
    json.key("p95").value(result.wall_ms.p95);
    json.key("max").value(result.wall_ms.max);
    json.key("mean").value(result.wall_ms.mean);
    json.key("stddev").value(result.wall_ms.stddev);
    json.end_object();
    if (result.items_per_second > 0.0) {
      json.key("items_per_second").value(result.items_per_second);
    }
    if (!result.counters.empty()) {
      json.key("counters").begin_object();
      for (const auto& [name, value] : result.counters) {
        json.key(name).value(value);
      }
      json.end_object();
    }
    json.end_object();
  }
  json.end_object();
  json.end_object();
  out << json.str() << '\n';
}

void print_summary(const RunSummary& summary) {
  if (summary.results.empty()) {
    std::printf("no benchmarks matched filter '%s'\n",
                summary.options.filter.c_str());
    return;
  }
  std::printf("%-44s %12s %12s %12s %8s\n", "benchmark", "median(ms)",
              "p95(ms)", "min(ms)", "reps");
  for (const BenchmarkResult& result : summary.results) {
    std::printf("%-44s %12.4f %12.4f %12.4f %8d", result.name.c_str(),
                result.wall_ms.median, result.wall_ms.p95, result.wall_ms.min,
                result.repetitions);
    if (result.items_per_second > 0.0) {
      std::printf("  %.3g items/s", result.items_per_second);
    }
    for (const auto& [name, value] : result.counters) {
      std::printf("  %s=%.4g", name.c_str(), value);
    }
    std::printf("\n");
  }
}

int run_main(int argc, char** argv) {
  Options options;
  std::string error;
  if (!parse_args(argc, argv, options, error)) {
    if (!error.empty()) std::fprintf(stderr, "error: %s\n", error.c_str());
    std::fprintf(
        stderr,
        "usage: %s [--filter SUBSTR] [--repetitions N] [--warmup N]\n"
        "          [--smoke] [--json PATH] [--tables|--no-tables] [--list]\n",
        argv[0]);
    return error.empty() ? 0 : 64;
  }

  const Registry& registry = Registry::global();
  if (options.list) {
    for (const Benchmark& benchmark : registry.benchmarks()) {
      std::printf("%s\n", benchmark.name.c_str());
    }
    return 0;
  }

  const RunSummary summary = run_benchmarks(registry, options);
  print_summary(summary);

  if (!options.json_path.empty()) {
    std::ofstream file(options.json_path);
    if (!file) {
      std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                   options.json_path.c_str());
      return 1;
    }
    write_json(summary, file);
    std::printf("wrote %zu benchmark result(s) to %s\n",
                summary.results.size(), options.json_path.c_str());
  }
  return 0;
}

}  // namespace ptest::bench
