// WorkerPool dispatch overhead: parallel_for must stay cheap enough
// that sharding a campaign round (a handful of multi-millisecond
// sessions) costs noise, and the dynamic cursor must balance skewed
// task durations.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>

#include "ptest/support/rng.hpp"
#include "ptest/support/worker_pool.hpp"

namespace {

using namespace ptest;

// Simulated session: a seed-dependent busy loop, like real sessions a
// pure function of its index.
std::uint64_t spin(std::uint64_t seed, std::uint64_t iterations) {
  support::Rng rng(seed);
  std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < iterations; ++i) acc ^= rng.next();
  return acc;
}

void BM_ParallelForDispatch(benchmark::State& state) {
  // Empty-ish tasks: measures pure pool overhead per index.
  support::WorkerPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::atomic<std::uint64_t> sink{0};
    pool.parallel_for(256, [&](std::size_t i) {
      sink.fetch_add(i, std::memory_order_relaxed);
    });
    benchmark::DoNotOptimize(sink.load());
  }
}
BENCHMARK(BM_ParallelForDispatch)->Arg(1)->Arg(3)->Unit(
    benchmark::kMicrosecond);

void BM_ParallelForSkewed(benchmark::State& state) {
  // Task i runs ~i times longer than task 0: the dynamic cursor should
  // keep workers busy despite the skew.
  support::WorkerPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::atomic<std::uint64_t> sink{0};
    pool.parallel_for(64, [&](std::size_t i) {
      sink.fetch_add(spin(i, 500 * (i + 1)), std::memory_order_relaxed);
    });
    benchmark::DoNotOptimize(sink.load());
  }
}
BENCHMARK(BM_ParallelForSkewed)->Arg(1)->Arg(3)->Unit(
    benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
