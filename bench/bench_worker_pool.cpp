// WorkerPool dispatch overhead: parallel_for must stay cheap enough
// that sharding a campaign round (a handful of multi-millisecond
// sessions) costs noise, and the dynamic cursor must balance skewed
// task durations.
#include <atomic>
#include <cstdint>
#include <string>

#include "harness.hpp"
#include "ptest/support/rng.hpp"
#include "ptest/support/worker_pool.hpp"

namespace {

using namespace ptest;

// Simulated session: a seed-dependent busy loop, like real sessions a
// pure function of its index.
std::uint64_t spin(std::uint64_t seed, std::uint64_t iterations) {
  support::Rng rng(seed);
  std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < iterations; ++i) acc ^= rng.next();
  return acc;
}

const int registered = [] {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    // Empty-ish tasks: measures pure pool overhead per index.
    bench::register_benchmark(
        "worker_pool/parallel_for_dispatch/threads=" +
            std::to_string(threads),
        [threads](bench::Context& ctx) {
          support::WorkerPool pool(threads);
          const std::size_t count = ctx.scaled<std::size_t>(256, 64);
          ctx.measure([&] {
            std::atomic<std::uint64_t> sink{0};
            pool.parallel_for(count, [&](std::size_t i) {
              sink.fetch_add(i, std::memory_order_relaxed);
            });
            bench::do_not_optimize(sink.load());
          });
          ctx.set_items_per_call(static_cast<double>(count));
        });

    // Task i runs ~i times longer than task 0: the dynamic cursor
    // should keep workers busy despite the skew.
    bench::register_benchmark(
        "worker_pool/parallel_for_skewed/threads=" + std::to_string(threads),
        [threads](bench::Context& ctx) {
          support::WorkerPool pool(threads);
          const std::size_t count = ctx.scaled<std::size_t>(64, 16);
          const auto body = [&] {
            std::atomic<std::uint64_t> sink{0};
            pool.parallel_for(count, [&](std::size_t i) {
              sink.fetch_add(spin(i, 500 * (i + 1)),
                             std::memory_order_relaxed);
            });
            bench::do_not_optimize(sink.load());
          };
          ctx.measure(body);
          // idle_nanos() is cumulative over the pool's lifetime, so the
          // exported counter is the delta across one extra call — a
          // per-parallel_for figure comparable across runs regardless
          // of --repetitions/--warmup.
          const std::uint64_t idle_before = pool.idle_nanos();
          body();
          ctx.set_counter(
              "pool_idle_ms_per_call",
              static_cast<double>(pool.idle_nanos() - idle_before) * 1e-6);
        });
  }
  return 0;
}();

}  // namespace
