// Paper Fig. 1: the spin-wait concurrency fault.
// Regenerates the figure's claim quantitatively: sweeping the relative
// timing of the two remote Resume commands shows a set of interleavings
// that complete (L f g K i j a b d e) and a set that livelock
// (K a L f g h b c g h ...).  Reports the manifesting fraction — the
// reason schedule-directed stress (pTest) beats single-schedule
// functional testing on this fault.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "ptest/workload/fig1.hpp"

namespace {

using namespace ptest;

void print_table() {
  std::printf("=== Fig. 1 interleaving sweep (m1_delay x m2_delay) ===\n");
  int livelocks = 0, total = 0;
  std::printf("        m2->");
  for (sim::Tick d2 = 0; d2 <= 10; ++d2) std::printf(" %3llu",
      static_cast<unsigned long long>(d2));
  std::printf("\n");
  for (sim::Tick d1 = 0; d1 <= 10; ++d1) {
    std::printf("m1_delay %2llu:", static_cast<unsigned long long>(d1));
    for (sim::Tick d2 = 0; d2 <= 10; ++d2) {
      workload::Fig1Options options;
      options.m1_delay = d1;
      options.m2_delay = d2;
      const auto result = workload::run_fig1(options);
      std::printf("   %c", result.livelocked ? 'X' : '.');
      livelocks += result.livelocked;
      ++total;
    }
    std::printf("\n");
  }
  std::printf("X = livelock (fault manifests): %d / %d interleavings "
              "(%.1f%%)\n\n",
              livelocks, total, 100.0 * livelocks / total);
}

void BM_Fig1Run(benchmark::State& state) {
  workload::Fig1Options options;
  options.m2_delay = static_cast<sim::Tick>(state.range(0));
  options.horizon = 2000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::run_fig1(options));
  }
}
BENCHMARK(BM_Fig1Run)->Arg(0)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
