// Paper Fig. 1: the spin-wait concurrency fault.
// Regenerates the figure's claim quantitatively: sweeping the relative
// timing of the two remote Resume commands shows a set of interleavings
// that complete (L f g K i j a b d e) and a set that livelock
// (K a L f g h b c g h ...).  Reports the manifesting fraction — the
// reason schedule-directed stress (pTest) beats single-schedule
// functional testing on this fault.
#include <cstdio>
#include <string>

#include "harness.hpp"
#include "ptest/workload/fig1.hpp"

namespace {

using namespace ptest;

void print_table() {
  std::printf("=== Fig. 1 interleaving sweep (m1_delay x m2_delay) ===\n");
  int livelocks = 0, total = 0;
  std::printf("        m2->");
  for (sim::Tick d2 = 0; d2 <= 10; ++d2) std::printf(" %3llu",
      static_cast<unsigned long long>(d2));
  std::printf("\n");
  for (sim::Tick d1 = 0; d1 <= 10; ++d1) {
    std::printf("m1_delay %2llu:", static_cast<unsigned long long>(d1));
    for (sim::Tick d2 = 0; d2 <= 10; ++d2) {
      workload::Fig1Options options;
      options.m1_delay = d1;
      options.m2_delay = d2;
      const auto result = workload::run_fig1(options);
      std::printf("   %c", result.livelocked ? 'X' : '.');
      livelocks += result.livelocked;
      ++total;
    }
    std::printf("\n");
  }
  std::printf("X = livelock (fault manifests): %d / %d interleavings "
              "(%.1f%%)\n\n",
              livelocks, total, 100.0 * livelocks / total);
}

const int registered = [] {
  bench::register_report("fig1_interleavings", print_table);
  for (const sim::Tick m2_delay : {sim::Tick{0}, sim::Tick{8}}) {
    bench::register_benchmark(
        "fig1_interleavings/run/m2_delay=" + std::to_string(m2_delay),
        [m2_delay](bench::Context& ctx) {
          workload::Fig1Options options;
          options.m2_delay = m2_delay;
          options.horizon = ctx.scaled<sim::Tick>(2000, 500);
          ctx.measure([&] {
            bench::do_not_optimize(workload::run_fig1(options));
          });
        });
  }
  return 0;
}();

}  // namespace
