// Ablation (paper §V future work): "identify the influence of probability
// distributions on the generation of test pattern for different testing
// scenarios."
// Sweeps four PD choices — uniform, the paper's Fig. 5 values, a
// suspend-heavy adversarial profile, and a terminate-heavy profile — and
// measures deadlock-detection probability (case 2) and suspend-pair
// density of the generated patterns.
#include <cstdio>

#include "harness.hpp"
#include "ptest/core/adaptive_test.hpp"
#include "ptest/workload/philosophers.hpp"

namespace {

using namespace ptest;

const char* kFig5 =
    "TC -> TCH = 0.6; TC -> TS = 0.2; TC -> TD = 0.1; TC -> TY = 0.1;"
    "TCH -> TCH = 0.6; TCH -> TS = 0.2; TCH -> TD = 0.1; TCH -> TY = 0.1;"
    "TS -> TR = 1.0;"
    "TR -> TCH = 0.4; TR -> TS = 0.3; TR -> TY = 0.2; TR -> TD = 0.1";

// Mass on TS/TR churn: many suspend windows -> more deadlock chances.
const char* kSuspendHeavy =
    "TC -> TS = 0.8; TC -> TCH = 0.1; TC -> TD = 0.05; TC -> TY = 0.05;"
    "TCH -> TS = 0.8; TCH -> TCH = 0.1; TCH -> TD = 0.05; TCH -> TY = 0.05;"
    "TS -> TR = 1.0;"
    "TR -> TS = 0.8; TR -> TCH = 0.1; TR -> TD = 0.05; TR -> TY = 0.05";

// Mass on early termination: short lifecycles, little interleaving.
const char* kTerminateHeavy =
    "TC -> TD = 0.4; TC -> TY = 0.4; TC -> TCH = 0.1; TC -> TS = 0.1;"
    "TCH -> TD = 0.4; TCH -> TY = 0.4; TCH -> TCH = 0.1; TCH -> TS = 0.1;"
    "TS -> TR = 1.0;"
    "TR -> TD = 0.4; TR -> TY = 0.4; TR -> TCH = 0.1; TR -> TS = 0.1";

struct Row {
  double detect = 0.0;
  double ts_per_pattern = 0.0;
};

Row evaluate(const char* distributions, int seeds) {
  core::PtestConfig config;
  config.distributions = distributions ? distributions : "";
  config.n = 3;
  config.s = 10;
  config.op = pattern::MergeOp::kCyclic;
  config.program_id = workload::kPhilosopherProgramId;
  config.max_ticks = 100000;
  config.command_spacing = 12;
  pfa::Alphabet alphabet;
  const core::WorkloadSetup setup = [](pcore::PcoreKernel& kernel) {
    (void)workload::register_philosophers(kernel, true, /*meals=*/500);
  };
  Row row;
  int hits = 0;
  std::size_t ts_count = 0, pattern_count = 0;
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(seeds);
       ++seed) {
    config.seed = seed;
    const auto result = core::adaptive_test(config, alphabet, setup);
    hits += result.session.outcome == core::Outcome::kBug &&
            result.session.report->kind == core::BugKind::kDeadlock;
    for (const auto& pattern : result.patterns) {
      ++pattern_count;
      for (const auto symbol : pattern.symbols) {
        ts_count += alphabet.name(symbol) == "TS";
      }
    }
  }
  row.detect = 100.0 * hits / seeds;
  row.ts_per_pattern =
      pattern_count ? double(ts_count) / double(pattern_count) : 0.0;
  return row;
}

void print_table() {
  constexpr int kSeeds = 40;
  std::printf("=== Ablation: probability distributions (cyclic op, %d "
              "seeds) ===\n", kSeeds);
  std::printf("%-18s | %-10s | %-16s\n", "distribution", "P(detect)",
              "TS per pattern");
  const auto report = [](const char* name, const Row& row) {
    std::printf("%-18s | %8.1f%% | %16.2f\n", name, row.detect,
                row.ts_per_pattern);
  };
  report("uniform", evaluate(nullptr, kSeeds));
  report("paper Fig. 5", evaluate(kFig5, kSeeds));
  report("suspend-heavy", evaluate(kSuspendHeavy, kSeeds));
  report("terminate-heavy", evaluate(kTerminateHeavy, kSeeds));
  std::printf("(expected shape: suspend-heavy >= Fig.5/uniform >> "
              "terminate-heavy)\n\n");
}

const int registered = [] {
  bench::register_report("ablation_distributions", print_table);

  bench::register_benchmark(
      "ablation_distributions/adaptive_run_fig5", [](bench::Context& ctx) {
        core::PtestConfig config;
        config.distributions = kFig5;
        config.n = 3;
        config.s = 10;
        config.op = pattern::MergeOp::kCyclic;
        config.program_id = workload::kPhilosopherProgramId;
        config.max_ticks = ctx.scaled<sim::Tick>(200000, 20000);
        pfa::Alphabet alphabet;
        const core::WorkloadSetup setup = [](pcore::PcoreKernel& kernel) {
          (void)workload::register_philosophers(kernel, true, /*meals=*/500);
        };
        std::uint64_t seed = 1;
        ctx.measure([&] {
          config.seed = seed++;
          bench::do_not_optimize(core::adaptive_test(config, alphabet, setup));
        });
      });
  return 0;
}();

}  // namespace
