// Parallel campaign runner: the epsilon-greedy session budget shards
// across a worker pool in fixed policy rounds, with per-session seeds
// derived from (base seed, run index).  Two claims measured here:
//
//   1. Correctness — the CampaignResult is bit-identical for every jobs
//      value (checked in the report table; it aborts on mismatch).
//   2. Speedup — wall time scales with worker count on multi-core hosts
//      (on a single hardware thread the table degenerates to ~1x).
//
// The jobs benchmarks export sessions_per_second and worker_idle_seconds
// from CampaignResult::metrics, so the JSON artifact shows whether added
// workers actually stayed busy.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "harness.hpp"
#include "ptest/core/campaign.hpp"
#include "ptest/workload/philosophers.hpp"

namespace {

using namespace ptest;

const char* kSuspendHeavy =
    "TC -> TS = 0.8; TC -> TCH = 0.1; TC -> TD = 0.05; TC -> TY = 0.05;"
    "TCH -> TS = 0.8; TCH -> TCH = 0.1; TCH -> TD = 0.05; TCH -> TY = 0.05;"
    "TS -> TR = 1.0;"
    "TR -> TS = 0.8; TR -> TCH = 0.1; TR -> TD = 0.05; TR -> TY = 0.05";

core::PtestConfig base_config() {
  core::PtestConfig config;
  config.n = 3;
  config.s = 10;
  config.program_id = workload::kPhilosopherProgramId;
  config.max_ticks = 100000;
  config.command_spacing = 12;
  return config;
}

core::Campaign make_campaign(std::size_t budget, std::size_t jobs,
                             bool precompile = true) {
  std::vector<core::CampaignArm> arms{
      {"sequential/uniform", pattern::MergeOp::kSequential, ""},
      {"round-robin/suspend-heavy", pattern::MergeOp::kRoundRobin,
       kSuspendHeavy},
  };
  const core::WorkloadSetup setup = [](pcore::PcoreKernel& kernel) {
    (void)workload::register_philosophers(kernel, /*buggy=*/true,
                                          /*meals=*/500);
  };
  core::CampaignOptions options;
  options.budget = budget;
  options.target = core::BugKind::kDeadlock;
  options.jobs = jobs;
  options.precompile = precompile;
  return core::Campaign(base_config(), arms, setup, options);
}

bool identical(const core::CampaignResult& a, const core::CampaignResult& b) {
  if (a.total_runs != b.total_runs ||
      a.total_detections != b.total_detections || a.best_arm != b.best_arm ||
      a.arm_stats.size() != b.arm_stats.size() ||
      a.distinct_failures.size() != b.distinct_failures.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.arm_stats.size(); ++i) {
    if (a.arm_stats[i].runs != b.arm_stats[i].runs ||
        a.arm_stats[i].detections != b.arm_stats[i].detections) {
      return false;
    }
  }
  auto it = b.distinct_failures.begin();
  for (const auto& entry : a.distinct_failures) {
    if (entry.first != it->first) return false;
    ++it;
  }
  return true;
}

void print_table() {
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("=== Parallel campaign: 64-session budget, %u hardware "
              "thread(s) ===\n", hw);

  const core::CampaignResult reference = make_campaign(64, 1).run();
  double serial_ms = 0.0;
  for (const std::size_t jobs : {1, 2, 4, 8}) {
    const auto start = std::chrono::steady_clock::now();
    const core::CampaignResult result = make_campaign(64, jobs).run();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    if (!identical(reference, result)) {
      std::fprintf(stderr,
                   "FATAL: jobs=%zu result differs from the serial run\n",
                   jobs);
      std::exit(1);
    }
    if (jobs == 1) serial_ms = ms;
    std::printf("jobs=%zu: %8.1f ms  (speedup %.2fx, %zu detections, "
                "%.0f sessions/s, idle %.1f ms, identical to serial: yes)\n",
                jobs, ms, serial_ms / ms, result.total_detections,
                result.metrics.sessions_per_second(),
                result.metrics.worker_idle_seconds() * 1e3);
  }

  // Reference row: the same serial campaign with the per-arm plan cache
  // disabled, i.e. the pre-split compile-per-run behaviour.  The result
  // must still be bit-identical; bench_plan_cache studies this axis in
  // depth.
  {
    const auto start = std::chrono::steady_clock::now();
    const core::CampaignResult result =
        make_campaign(64, 1, /*precompile=*/false).run();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    if (!identical(reference, result)) {
      std::fprintf(stderr,
                   "FATAL: compile-per-run result differs from plan cache\n");
      std::exit(1);
    }
    std::printf("jobs=1 (no plan cache): %8.1f ms  (plan cache saves "
                "%.1f%%, identical: yes)\n",
                ms, 100.0 * (ms - serial_ms) / ms);
  }
  std::printf("\n");
}

const int registered = [] {
  bench::register_report("parallel_campaign", print_table);

  for (const std::size_t jobs :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    bench::register_benchmark(
        "parallel_campaign/campaign/jobs=" + std::to_string(jobs),
        [jobs](bench::Context& ctx) {
          const std::size_t budget = ctx.scaled<std::size_t>(32, 4);
          core::CampaignResult last;
          ctx.measure([&] {
            core::Campaign campaign = make_campaign(budget, jobs);
            last = campaign.run();
            bench::do_not_optimize(last);
          });
          ctx.set_items_per_call(static_cast<double>(budget));
          ctx.set_counter("sessions_per_sec",
                          last.metrics.sessions_per_second());
          ctx.set_counter("interleavings_per_sec",
                          last.metrics.interleavings_per_sec());
          ctx.set_counter("worker_idle_ms",
                          last.metrics.worker_idle_seconds() * 1e3);
          ctx.set_counter("worker_threads",
                          static_cast<double>(last.metrics.worker_threads));
        });
  }
  return 0;
}();

}  // namespace
