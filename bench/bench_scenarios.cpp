// Per-scenario fault coverage over the ScenarioRegistry catalog.
//
// Extends bench_fault_coverage's (bug, op) table to every registered
// scenario: each row runs the scenario's own campaign (its plan, its
// workload, its default budget) and reports detections, distinct failure
// signatures, and the bug-oracle verdict — plus the benign counterpart's
// verdict where one exists.  The sweep doubles as the catalog's coverage
// figure: how much of the bug corpus does the paper's PFA configuration
// expose per session budget.
#include <cstdio>

#include "harness.hpp"
#include "ptest/core/campaign.hpp"
#include "ptest/scenario/registry.hpp"

namespace {

using namespace ptest;

void print_catalog_coverage() {
  const auto& registry = scenario::ScenarioRegistry::builtin();
  std::printf("=== Scenario catalog fault coverage (default budgets) ===\n");
  std::printf("%-22s %-10s %-15s %5s %5s %6s %7s %s\n", "scenario",
              "category", "expected", "runs", "det", "oracle", "benign",
              "signatures");
  std::size_t satisfied = 0;
  for (const auto& s : registry.all()) {
    core::CampaignOptions options;
    options.budget = 0;  // scenario default
    const auto result = core::Campaign::run_scenario(s.name, options);
    if (!result.ok()) {
      std::printf("%-22s ERROR %s\n", s.name.c_str(),
                  result.error().c_str());
      continue;
    }
    const core::CampaignResult& campaign = result.value();
    const bool ok = s.oracle.satisfied(campaign);
    satisfied += ok;
    const char* benign_verdict = "-";
    if (s.has_benign()) {
      const auto benign = core::Campaign::run_scenario(s.name, options, true);
      benign_verdict =
          benign.ok() && !s.oracle.fired(benign.value()) ? "silent" : "FIRED";
    }
    std::printf("%-22s %-10s %-15s %5zu %5zu %6s %7s %zu\n", s.name.c_str(),
                to_string(s.category),
                s.expects_bug() ? core::to_string(*s.oracle.expected_kind)
                                : "none",
                campaign.total_runs, campaign.total_detections,
                ok ? "ok" : "MISS", benign_verdict,
                campaign.distinct_failures.size());
  }
  std::printf("oracle satisfied on %zu / %zu scenarios\n\n", satisfied,
              registry.size());
}

const int registered = [] {
  bench::register_report("scenarios", print_catalog_coverage);

  // One full catalog sweep per iteration: the cost of "run every
  // registered scenario's campaign once" — the number campaigns and CI
  // budgeting care about as the catalog grows.
  bench::register_benchmark("scenarios/catalog_sweep",
                            [](bench::Context& ctx) {
                              ctx.measure([&] {
                                std::size_t detections = 0;
                                for (const auto& s :
                                     scenario::ScenarioRegistry::builtin()
                                         .all()) {
                                  core::CampaignOptions options;
                                  options.budget = ctx.smoke() ? 4 : 0;
                                  const auto result =
                                      core::Campaign::run_scenario(s.name,
                                                                   options);
                                  if (result.ok()) {
                                    detections +=
                                        result.value().total_detections;
                                  }
                                }
                                bench::do_not_optimize(detections);
                              });
                            });
  return 0;
}();

}  // namespace
