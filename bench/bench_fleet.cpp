// Fleet coordinator/worker split measured against the single-process
// campaign it must reproduce.  Two claims:
//
//   1. Correctness — for every shard count the merged CampaignResult
//      and the merged session-span corpus are bit-identical to the
//      single-process run of the same budget (the table and every
//      benchmark body abort on mismatch, like bench_parallel_campaign).
//   2. Cost — what the coordinator adds over the serial runner: wire
//      encode/decode per shard, the corpus merge (corpus_merge_ms), and
//      shard imbalance (slowest/fastest shard wall ratio).
//
// Counters exported for the CI gate: fleet_sessions_total and
// fleet_uncovered_transitions are deterministic work counts (the gate
// blocks on them — more sessions for the same budget, or transitions
// lost in the merge, is a correctness drift, not runner noise);
// aggregate sessions_per_sec, corpus_merge_ms and shard_imbalance are
// timing-class and informational.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness.hpp"
#include "ptest/core/campaign.hpp"
#include "ptest/fleet/coordinator.hpp"
#include "ptest/fleet/worker.hpp"

namespace {

using namespace ptest;

constexpr const char* kScenario = "philosophers-deadlock";

core::CampaignResult serial_reference(std::size_t budget) {
  core::CampaignOptions options;
  options.budget = budget;
  auto result = core::Campaign::run_scenario(kScenario, options);
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL: serial reference failed: %s\n",
                 result.error().c_str());
    std::exit(1);
  }
  return std::move(result.value());
}

fleet::FleetResult run_fleet(std::size_t budget, std::size_t shards) {
  fleet::CoordinatorOptions options;
  options.shards = shards;
  options.budget = budget;
  auto result = fleet::run_local_fleet(kScenario, options);
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL: fleet run failed: %s\n",
                 result.error().c_str());
    std::exit(1);
  }
  return std::move(result.value());
}

bool identical(const core::CampaignResult& a, const core::CampaignResult& b) {
  if (a.total_runs != b.total_runs ||
      a.total_detections != b.total_detections ||
      a.arm_stats.size() != b.arm_stats.size() ||
      a.arm_stats[0].runs != b.arm_stats[0].runs ||
      a.arm_stats[0].detections != b.arm_stats[0].detections ||
      a.distinct_failures.size() != b.distinct_failures.size() ||
      a.metrics.sessions != b.metrics.sessions ||
      a.metrics.patterns_generated != b.metrics.patterns_generated ||
      a.metrics.dedup_accepted != b.metrics.dedup_accepted ||
      a.metrics.dedup_rejected != b.metrics.dedup_rejected ||
      a.metrics.ticks != b.metrics.ticks ||
      a.metrics.plan_compiles != b.metrics.plan_compiles ||
      a.metrics.pfa_transitions_covered != b.metrics.pfa_transitions_covered ||
      a.arm_coverage_state != b.arm_coverage_state) {
    return false;
  }
  auto it = b.distinct_failures.begin();
  for (const auto& entry : a.distinct_failures) {
    if (entry.first != it->first) return false;
    ++it;
  }
  return true;
}

/// Aborts unless the fleet result (campaign + corpus) matches the
/// serial run bit for bit — a fleet that is fast but wrong must never
/// post a number.
void check_identity(const fleet::FleetResult& fleet_result,
                    const core::CampaignResult& serial, std::size_t budget,
                    std::size_t shards) {
  if (!identical(fleet_result.result, serial)) {
    std::fprintf(stderr,
                 "FATAL: shards=%zu result differs from the serial run\n",
                 shards);
    std::exit(1);
  }
  const core::ShardSlice whole{0, 0, budget};
  auto reference = fleet::shard_corpus(kScenario, whole, serial);
  if (!reference.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", reference.error().c_str());
    std::exit(1);
  }
  if (fleet_result.corpus.to_json() != reference.value().to_json()) {
    std::fprintf(stderr,
                 "FATAL: shards=%zu merged corpus differs from serial\n",
                 shards);
    std::exit(1);
  }
}

std::uint64_t uncovered_transitions(const support::MetricsSnapshot& metrics) {
  return metrics.pfa_transitions - metrics.pfa_transitions_covered;
}

void print_table() {
  const std::size_t budget = 48;
  std::printf("=== Fleet: %s, %zu-session budget, in-process transport ===\n",
              kScenario, budget);
  const core::CampaignResult serial = serial_reference(budget);
  double serial_ms = 0.0;
  {
    const auto start = std::chrono::steady_clock::now();
    const core::CampaignResult again = serial_reference(budget);
    serial_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    bench::do_not_optimize(again);
  }
  std::printf("single-process:  %8.1f ms  (%zu detections, %zu transitions "
              "covered)\n",
              serial_ms, serial.total_detections,
              static_cast<std::size_t>(serial.metrics.pfa_transitions_covered));
  for (const std::size_t shards : {2, 4}) {
    const auto start = std::chrono::steady_clock::now();
    const fleet::FleetResult result = run_fleet(budget, shards);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    check_identity(result, serial, budget, shards);
    std::printf("fleet shards=%zu: %8.1f ms  (merge %.3f ms, imbalance "
                "%.2fx, identical to serial: yes)\n",
                shards, ms,
                result.result.metrics.fleet_corpus_merge_ns / 1e6,
                result.result.metrics.fleet_shard_imbalance());
  }
  std::printf("\n");
}

const int registered = [] {
  bench::register_report("fleet", print_table);

  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    bench::register_benchmark(
        "fleet/local/shards=" + std::to_string(shards),
        [shards](bench::Context& ctx) {
          const std::size_t budget = ctx.scaled<std::size_t>(48, 16);
          const core::CampaignResult serial = serial_reference(budget);
          fleet::FleetResult last;
          ctx.measure([&] {
            last = run_fleet(budget, shards);
            bench::do_not_optimize(last);
          });
          check_identity(last, serial, budget, shards);
          ctx.set_items_per_call(static_cast<double>(budget));
          const support::MetricsSnapshot& metrics = last.result.metrics;
          ctx.set_counter("fleet_sessions_total",
                          static_cast<double>(metrics.sessions));
          ctx.set_counter("fleet_uncovered_transitions",
                          static_cast<double>(uncovered_transitions(metrics)));
          ctx.set_counter("sessions_per_sec",
                          metrics.sessions_per_second());
          ctx.set_counter("corpus_merge_ms",
                          metrics.fleet_corpus_merge_ns / 1e6);
          ctx.set_counter("shard_imbalance",
                          metrics.fleet_shard_imbalance());
          ctx.set_counter("fleet_retries",
                          static_cast<double>(metrics.fleet_retries));
        });
  }

  // The serial row the fleet rows are read against (same budget, same
  // scenario, no coordinator): coordinator overhead = fleet - serial.
  bench::register_benchmark("fleet/serial", [](bench::Context& ctx) {
    const std::size_t budget = ctx.scaled<std::size_t>(48, 16);
    core::CampaignResult last;
    ctx.measure([&] {
      last = serial_reference(budget);
      bench::do_not_optimize(last);
    });
    ctx.set_items_per_call(static_cast<double>(budget));
    ctx.set_counter("fleet_sessions_total",
                    static_cast<double>(last.metrics.sessions));
    ctx.set_counter("fleet_uncovered_transitions",
                    static_cast<double>(uncovered_transitions(last.metrics)));
    ctx.set_counter("sessions_per_sec", last.metrics.sessions_per_second());
  });
  return 0;
}();

}  // namespace
