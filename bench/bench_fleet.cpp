// Fleet coordinator/worker split measured against the single-process
// campaign it must reproduce.  Two claims:
//
//   1. Correctness — for every shard count the merged CampaignResult
//      and the merged session-span corpus are bit-identical to the
//      single-process run of the same budget (the table and every
//      benchmark body abort on mismatch, like bench_parallel_campaign).
//   2. Cost — what the coordinator adds over the serial runner: wire
//      encode/decode per shard, the corpus merge (corpus_merge_ms), and
//      shard imbalance (slowest/fastest shard wall ratio).
//
// Counters exported for the CI gate: fleet_sessions_total and
// fleet_uncovered_transitions are deterministic work counts (the gate
// blocks on them — more sessions for the same budget, or transitions
// lost in the merge, is a correctness drift, not runner noise);
// aggregate sessions_per_sec, corpus_merge_ms and shard_imbalance are
// timing-class and informational.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "harness.hpp"
#include "ptest/core/campaign.hpp"
#include "ptest/fleet/coordinator.hpp"
#include "ptest/fleet/socket_transport.hpp"
#include "ptest/fleet/wire.hpp"
#include "ptest/fleet/worker.hpp"

namespace {

using namespace ptest;

constexpr const char* kScenario = "philosophers-deadlock";

core::CampaignResult serial_reference(std::size_t budget) {
  core::CampaignOptions options;
  options.budget = budget;
  auto result = core::Campaign::run_scenario(kScenario, options);
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL: serial reference failed: %s\n",
                 result.error().c_str());
    std::exit(1);
  }
  return std::move(result.value());
}

fleet::FleetResult run_fleet(std::size_t budget, std::size_t shards) {
  fleet::CoordinatorOptions options;
  options.shards = shards;
  options.budget = budget;
  auto result = fleet::run_local_fleet(kScenario, options);
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL: fleet run failed: %s\n",
                 result.error().c_str());
    std::exit(1);
  }
  return std::move(result.value());
}

/// One campaign over TCP: two persistent worker daemons on localhost
/// and a coordinator dialing both — the full socket round trip (encode,
/// kernel buffers, reassembly, decode) in the measured region.
fleet::FleetResult run_socket_fleet(std::size_t budget, std::size_t shards) {
  auto daemon0 =
      std::make_unique<fleet::SocketTransport>(fleet::SocketTransport::Listen{0});
  auto daemon1 =
      std::make_unique<fleet::SocketTransport>(fleet::SocketTransport::Listen{0});
  fleet::WorkerOptions worker_options;
  worker_options.idle_sleep_us = 100;
  worker_options.persistent = true;
  std::vector<std::thread> daemons;
  int node = 0;
  for (fleet::SocketTransport* transport : {daemon0.get(), daemon1.get()}) {
    fleet::WorkerOptions options = worker_options;
    options.node = "bench-w" + std::to_string(node++);
    daemons.emplace_back([transport, options] {
      (void)fleet::Worker(options).serve(*transport);
    });
  }
  fleet::CoordinatorOptions options;
  options.shards = shards;
  options.budget = budget;
  options.idle_sleep_us = 100;
  options.shard_deadline = 600'000;
  options.drain = fleet::DrainMode::kCampaignEnd;
  fleet::FleetResult fleet_result;
  {
    fleet::SocketTransport coordinator(fleet::SocketTransport::Connect{
        {"127.0.0.1:" + std::to_string(daemon0->port()),
         "127.0.0.1:" + std::to_string(daemon1->port())}});
    auto result = fleet::Coordinator(kScenario, options).run(coordinator);
    if (!result.ok()) {
      std::fprintf(stderr, "FATAL: socket fleet run failed: %s\n",
                   result.error().c_str());
      std::exit(1);
    }
    fleet_result = std::move(result.value());
  }
  // End the daemons with an explicit halt, like `--halt-fleet`.
  fleet::SocketTransport halt(fleet::SocketTransport::Connect{
      {"127.0.0.1:" + std::to_string(daemon0->port()),
       "127.0.0.1:" + std::to_string(daemon1->port())}});
  const std::size_t peers = halt.peers();
  for (std::size_t i = 0; i < peers; ++i) {
    while (!halt.send(fleet::encode_shutdown())) std::this_thread::yield();
  }
  for (std::thread& daemon : daemons) daemon.join();
  return fleet_result;
}

bool identical(const core::CampaignResult& a, const core::CampaignResult& b) {
  if (a.total_runs != b.total_runs ||
      a.total_detections != b.total_detections ||
      a.arm_stats.size() != b.arm_stats.size() ||
      a.arm_stats[0].runs != b.arm_stats[0].runs ||
      a.arm_stats[0].detections != b.arm_stats[0].detections ||
      a.distinct_failures.size() != b.distinct_failures.size() ||
      a.metrics.sessions != b.metrics.sessions ||
      a.metrics.patterns_generated != b.metrics.patterns_generated ||
      a.metrics.dedup_accepted != b.metrics.dedup_accepted ||
      a.metrics.dedup_rejected != b.metrics.dedup_rejected ||
      a.metrics.ticks != b.metrics.ticks ||
      a.metrics.plan_compiles != b.metrics.plan_compiles ||
      a.metrics.pfa_transitions_covered != b.metrics.pfa_transitions_covered ||
      // Work-class histogram: per-session kernel ticks are deterministic,
      // so the shard-merged distribution must equal the serial one
      // bucket for bucket (the timing-class histograms are exempt).
      !(a.metrics.ticks_hist == b.metrics.ticks_hist) ||
      a.arm_coverage_state != b.arm_coverage_state) {
    return false;
  }
  auto it = b.distinct_failures.begin();
  for (const auto& entry : a.distinct_failures) {
    if (entry.first != it->first) return false;
    ++it;
  }
  return true;
}

/// Aborts unless the fleet result (campaign + corpus) matches the
/// serial run bit for bit — a fleet that is fast but wrong must never
/// post a number.
void check_identity(const fleet::FleetResult& fleet_result,
                    const core::CampaignResult& serial, std::size_t budget,
                    std::size_t shards) {
  if (!identical(fleet_result.result, serial)) {
    std::fprintf(stderr,
                 "FATAL: shards=%zu result differs from the serial run\n",
                 shards);
    std::exit(1);
  }
  const core::ShardSlice whole{0, 0, budget};
  auto reference = fleet::shard_corpus(kScenario, whole, serial);
  if (!reference.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", reference.error().c_str());
    std::exit(1);
  }
  if (fleet_result.corpus.to_json() != reference.value().to_json()) {
    std::fprintf(stderr,
                 "FATAL: shards=%zu merged corpus differs from serial\n",
                 shards);
    std::exit(1);
  }
}

std::uint64_t uncovered_transitions(const support::MetricsSnapshot& metrics) {
  return metrics.pfa_transitions - metrics.pfa_transitions_covered;
}

/// Deterministic fingerprint of the ticks histogram for the CI gate,
/// xor-folded to 32 bits so the value survives the JSON double round
/// trip exactly.  Any drift in the per-session work distribution —
/// not just its total — moves this counter.
double ticks_hist_fingerprint(const support::MetricsSnapshot& metrics) {
  std::uint64_t hash = 1469598103934665603ULL;  // FNV-1a offset basis
  for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
    std::uint64_t bucket = metrics.ticks_hist.bucket(i);
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= bucket & 0xff;
      hash *= 1099511628211ULL;  // FNV-1a prime
      bucket >>= 8;
    }
  }
  return static_cast<double>((hash >> 32) ^ (hash & 0xffffffffULL));
}

void print_table() {
  const std::size_t budget = 48;
  std::printf("=== Fleet: %s, %zu-session budget, in-process transport ===\n",
              kScenario, budget);
  const core::CampaignResult serial = serial_reference(budget);
  double serial_ms = 0.0;
  {
    const auto start = std::chrono::steady_clock::now();
    const core::CampaignResult again = serial_reference(budget);
    serial_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    bench::do_not_optimize(again);
  }
  std::printf("single-process:  %8.1f ms  (%zu detections, %zu transitions "
              "covered)\n",
              serial_ms, serial.total_detections,
              static_cast<std::size_t>(serial.metrics.pfa_transitions_covered));
  for (const std::size_t shards : {2, 4}) {
    const auto start = std::chrono::steady_clock::now();
    const fleet::FleetResult result = run_fleet(budget, shards);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    check_identity(result, serial, budget, shards);
    std::printf("fleet shards=%zu: %8.1f ms  (merge %.3f ms, imbalance "
                "%.2fx, identical to serial: yes)\n",
                shards, ms,
                result.result.metrics.fleet_corpus_merge_ns / 1e6,
                result.result.metrics.fleet_shard_imbalance());
  }
  {
    // The same campaign with the frames crossing real TCP sockets: the
    // delta over the in-process rows is the wire cost (kernel buffers,
    // reassembly, daemon startup/halt included here).
    const auto start = std::chrono::steady_clock::now();
    const fleet::FleetResult result = run_socket_fleet(budget, 2);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    check_identity(result, serial, budget, 2);
    std::printf("socket shards=2: %8.1f ms  (merge %.3f ms, identical to "
                "serial: yes)\n",
                ms, result.result.metrics.fleet_corpus_merge_ns / 1e6);
  }
  std::printf("\n");
}

const int registered = [] {
  bench::register_report("fleet", print_table);

  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    bench::register_benchmark(
        "fleet/local/shards=" + std::to_string(shards),
        [shards](bench::Context& ctx) {
          const std::size_t budget = ctx.scaled<std::size_t>(48, 16);
          const core::CampaignResult serial = serial_reference(budget);
          fleet::FleetResult last;
          ctx.measure([&] {
            last = run_fleet(budget, shards);
            bench::do_not_optimize(last);
          });
          check_identity(last, serial, budget, shards);
          ctx.set_items_per_call(static_cast<double>(budget));
          const support::MetricsSnapshot& metrics = last.result.metrics;
          ctx.set_counter("fleet_sessions_total",
                          static_cast<double>(metrics.sessions));
          ctx.set_counter("fleet_uncovered_transitions",
                          static_cast<double>(uncovered_transitions(metrics)));
          ctx.set_counter("sessions_per_sec",
                          metrics.sessions_per_second());
          ctx.set_counter("corpus_merge_ms",
                          metrics.fleet_corpus_merge_ns / 1e6);
          ctx.set_counter("shard_imbalance",
                          metrics.fleet_shard_imbalance());
          ctx.set_counter("fleet_retries",
                          static_cast<double>(metrics.fleet_retries));
          ctx.set_counter("ticks_hist_fingerprint",
                          ticks_hist_fingerprint(metrics));
          ctx.set_counter("session_wall_p95_ns",
                          static_cast<double>(metrics.session_wall_hist.p95()));
          ctx.set_counter("frame_rtt_p95_ns",
                          static_cast<double>(metrics.frame_rtt_hist.p95()));
        });
  }

  // Socket transport variant: the deterministic counters are gated like
  // the local rows (same sessions, same coverage, or it is drift); the
  // timing counters are informational and include daemon startup/halt.
  bench::register_benchmark(
      "fleet/socket/shards=2", [](bench::Context& ctx) {
        const std::size_t budget = ctx.scaled<std::size_t>(48, 16);
        const core::CampaignResult serial = serial_reference(budget);
        fleet::FleetResult last;
        ctx.measure([&] {
          last = run_socket_fleet(budget, 2);
          bench::do_not_optimize(last);
        });
        check_identity(last, serial, budget, 2);
        ctx.set_items_per_call(static_cast<double>(budget));
        const support::MetricsSnapshot& metrics = last.result.metrics;
        ctx.set_counter("fleet_sessions_total",
                        static_cast<double>(metrics.sessions));
        ctx.set_counter("fleet_uncovered_transitions",
                        static_cast<double>(uncovered_transitions(metrics)));
        ctx.set_counter("sessions_per_sec", metrics.sessions_per_second());
        ctx.set_counter("corpus_merge_ms",
                        metrics.fleet_corpus_merge_ns / 1e6);
        ctx.set_counter("fleet_retries",
                        static_cast<double>(metrics.fleet_retries));
        ctx.set_counter("ticks_hist_fingerprint",
                        ticks_hist_fingerprint(metrics));
        ctx.set_counter("frame_rtt_p95_ns",
                        static_cast<double>(metrics.frame_rtt_hist.p95()));
      });

  // The serial row the fleet rows are read against (same budget, same
  // scenario, no coordinator): coordinator overhead = fleet - serial.
  bench::register_benchmark("fleet/serial", [](bench::Context& ctx) {
    const std::size_t budget = ctx.scaled<std::size_t>(48, 16);
    core::CampaignResult last;
    ctx.measure([&] {
      last = serial_reference(budget);
      bench::do_not_optimize(last);
    });
    ctx.set_items_per_call(static_cast<double>(budget));
    ctx.set_counter("fleet_sessions_total",
                    static_cast<double>(last.metrics.sessions));
    ctx.set_counter("fleet_uncovered_transitions",
                    static_cast<double>(uncovered_transitions(last.metrics)));
    ctx.set_counter("sessions_per_sec", last.metrics.sessions_per_second());
    // The fleet rows' fingerprints must equal this one: the shard-merged
    // ticks distribution is bit-identical to the serial run's.
    ctx.set_counter("ticks_hist_fingerprint",
                    ticks_hist_fingerprint(last.metrics));
    ctx.set_counter("session_wall_p95_ns",
                    static_cast<double>(last.metrics.session_wall_hist.p95()));
  });
  return 0;
}();

}  // namespace
