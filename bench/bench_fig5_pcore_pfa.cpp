// Paper Fig. 5 + Eq. (2): the pCore task-lifecycle PFA.
// Regenerates: (a) 100% pattern legality — every sampled pattern is a word
// of RE = TC((TCH)* | TS TR (TCH)*)* (TD$|TY$); (b) empirical transition
// frequencies vs. the configured Fig. 5 probabilities; (c) generation
// throughput vs. pattern size s (Algorithm 2's cost model).
#include <cstdio>
#include <map>
#include <string>

#include "harness.hpp"
#include "ptest/bridge/protocol.hpp"
#include "ptest/pattern/generator.hpp"

namespace {

using namespace ptest;

const char* kFig5 =
    "TC -> TCH = 0.6; TC -> TS = 0.2; TC -> TD = 0.1; TC -> TY = 0.1;"
    "TCH -> TCH = 0.6; TCH -> TS = 0.2; TCH -> TD = 0.1; TCH -> TY = 0.1;"
    "TS -> TR = 1.0;"
    "TR -> TCH = 0.4; TR -> TS = 0.3; TR -> TY = 0.2; TR -> TD = 0.1";

struct PcorePfa {
  pfa::Alphabet alphabet;
  pfa::Pfa pfa;
  PcorePfa() : pfa(build()) {}
  pfa::Pfa build() {
    bridge::intern_service_alphabet(alphabet);
    const pfa::Regex re = pfa::Regex::parse(
        "TC((TCH)* | TS TR (TCH)*)* (TD$ | TY$)", alphabet);
    return pfa::Pfa::from_regex(
        re, pfa::DistributionSpec::parse(kFig5, alphabet), alphabet);
  }
};

void print_tables() {
  PcorePfa f;
  support::Rng rng(2009);
  constexpr int kTrials = 50000;
  int legal = 0;
  std::map<std::pair<pfa::SymbolId, pfa::SymbolId>, double> counts;
  std::map<pfa::SymbolId, double> totals;
  pfa::WalkOptions options;
  options.size = 12;
  for (int i = 0; i < kTrials; ++i) {
    const pfa::Walk walk = f.pfa.sample(rng, options);
    legal += f.pfa.accepts(walk.symbols);
    for (std::size_t j = 0; j + 1 < walk.symbols.size(); ++j) {
      counts[{walk.symbols[j], walk.symbols[j + 1]}] += 1.0;
      totals[walk.symbols[j]] += 1.0;
    }
  }
  std::printf("=== Fig. 5 pCore PFA, Eq. (2) ===\n");
  std::printf("pattern legality: %d / %d (%.2f%%)\n", legal, kTrials,
              100.0 * legal / kTrials);
  std::printf("%-10s | %-10s | %-10s\n", "transition", "configured",
              "empirical");
  const auto row = [&](const char* from, const char* to, double want) {
    const auto a = f.alphabet.at(from), b = f.alphabet.at(to);
    std::printf("%3s -> %-3s | %10.3f | %10.3f\n", from, to, want,
                totals[a] > 0 ? counts[{a, b}] / totals[a] : 0.0);
  };
  row("TC", "TCH", 0.6);
  row("TC", "TS", 0.2);
  row("TC", "TD", 0.1);
  row("TC", "TY", 0.1);
  row("TCH", "TCH", 0.6);
  row("TCH", "TS", 0.2);
  row("TS", "TR", 1.0);
  row("TR", "TCH", 0.4);
  row("TR", "TS", 0.3);
  row("TR", "TY", 0.2);
  row("TR", "TD", 0.1);
  std::printf("\n");
}

const int registered = [] {
  bench::register_report("fig5_pcore_pfa", print_tables);

  for (const std::size_t size : {4u, 8u, 16u, 32u, 64u}) {
    bench::register_benchmark(
        "fig5_pcore_pfa/generate_pattern/s=" + std::to_string(size),
        [size](bench::Context& ctx) {
          PcorePfa f;
          pattern::PatternGenerator generator(f.pfa, {.size = size},
                                              support::Rng(1));
          ctx.measure([&] { bench::do_not_optimize(generator.generate()); });
          ctx.set_items_per_call(static_cast<double>(size));
        });
  }

  bench::register_benchmark(
      "fig5_pcore_pfa/build_pfa_from_regex", [](bench::Context& ctx) {
        ctx.measure([&] {
          pfa::Alphabet alphabet;
          const pfa::Regex re = pfa::Regex::parse(
              "TC((TCH)* | TS TR (TCH)*)* (TD$ | TY$)", alphabet);
          bench::do_not_optimize(pfa::Pfa::from_regex(
              re, pfa::DistributionSpec::parse(kFig5, alphabet), alphabet));
        });
      });
  return 0;
}();

}  // namespace
