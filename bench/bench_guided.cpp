// Guided vs static sessions-to-first-bug across the sync-bug catalog.
//
// The question the guided/ subsystem exists to answer: starting from an
// *uninformed* plan (the paper's own premise — §I assumes users do not
// know the probability distributions), how many sessions does each mode
// spend before the scenario's oracle fires?  Static keeps sampling the
// wrong-prior plan; guided refines it toward uncovered PFA transitions
// every epoch.  Both modes run the same scenario config, the same
// per-session budget, and the same derive_seed(seed, i) session seeds —
// epoch 0 of a guided run IS the static run's prefix, so any gap is
// attributable to refinement alone.
//
// Two wrong priors, one per regex family:
//   * lifecycle (Eq. 2) scenarios get a churn-heavy prior — tasks retire
//     early, starving hold-and-wait windows;
//   * terminal-free (hang) scenarios get a suspend-starved prior — the
//     suspend windows their bugs need almost never open.
//
// The report prints the full per-seed table; the timed benchmark runs
// one guided campaign and attaches the median sessions-to-first-bug of
// both modes as counters, which BENCH_results.json carries into
// scripts/check_bench_regression.py --counter (the guided perf gate).
#include <algorithm>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "harness.hpp"
#include "ptest/guided/campaign.hpp"
#include "ptest/scenario/registry.hpp"
#include "ptest/support/rng.hpp"

namespace {

using namespace ptest;

/// Churn-heavy wrong prior for Eq. 2 lifecycle plans: TD/TY dominate, so
/// static sessions rarely keep enough tasks alive to collide.
constexpr const char* kChurnPriorPd =
    "TC -> TCH = 0.3; TC -> TS = 0.02; TC -> TD = 1.0; TC -> TY = 1.0;"
    "TCH -> TCH = 0.3; TCH -> TS = 0.02; TCH -> TD = 1.0; TCH -> TY = 1.0;"
    "TS -> TR = 1.0;"
    "TR -> TCH = 0.3; TR -> TS = 0.02; TR -> TD = 1.0; TR -> TY = 1.0";

/// Suspend-starved wrong prior for terminal-free hang plans.
constexpr const char* kNoSuspendPriorPd =
    "TC -> TCH = 1.0; TC -> TS = 0.02;"
    "TCH -> TCH = 1.0; TCH -> TS = 0.02;"
    "TS -> TR = 1.0;"
    "TR -> TCH = 1.0; TR -> TS = 0.02";

struct BenchScenario {
  const char* name;
  const char* prior;  // the uninformed PD both modes start from
};

constexpr BenchScenario kScenarios[] = {
    {"deadlock-pair", kChurnPriorPd},
    {"philosophers-deadlock", kChurnPriorPd},
    {"aba-stack", kChurnPriorPd},
    {"lost-wakeup", kNoSuspendPriorPd},
    {"livelock-backoff", kNoSuspendPriorPd},
    {"fig1-livelock", kNoSuspendPriorPd},
};

guided::GuidedOptions guided_options(const scenario::Scenario& s,
                                     std::size_t budget) {
  guided::GuidedOptions options;
  options.sessions_per_epoch = 3;
  options.max_epochs = (budget + options.sessions_per_epoch - 1) /
                       options.sessions_per_epoch;
  options.refiner.exploration_share = 0.6;
  options.plateau_window = 0;  // measure pure sessions-to-first-bug
  options.counts_as_bug = [&s](const core::BugReport& report) {
    return s.oracle.matches(report);
  };
  return options;
}

core::PtestConfig wrong_prior_config(const scenario::Scenario& s,
                                     const char* prior, std::uint64_t seed) {
  core::PtestConfig config = s.config;
  config.distributions = prior;
  config.seed = seed;
  return config;
}

/// Static mode: the uninformed plan, fixed, session after session.
std::optional<std::size_t> static_stfb(const scenario::Scenario& s,
                                       const core::PtestConfig& config,
                                       std::size_t budget) {
  const core::CompiledTestPlanPtr plan = core::compile(config);
  for (std::size_t i = 0; i < budget; ++i) {
    const auto result =
        core::execute(*plan, support::derive_seed(config.seed, i), s.setup);
    if (result.session.outcome == core::Outcome::kBug &&
        result.session.report && s.oracle.matches(*result.session.report)) {
      return i + 1;
    }
  }
  return std::nullopt;
}

std::optional<std::size_t> guided_stfb(const scenario::Scenario& s,
                                       const core::PtestConfig& config,
                                       std::size_t budget) {
  guided::GuidedCampaign campaign(config, s.setup,
                                  guided_options(s, budget));
  return campaign.run().sessions_to_first_bug;
}

/// Median with misses counted as budget + 1 (they exhaust the budget).
double median_stfb(std::vector<std::optional<std::size_t>> values,
                   std::size_t budget) {
  std::vector<double> numeric;
  numeric.reserve(values.size());
  for (const auto& value : values) {
    numeric.push_back(value ? static_cast<double>(*value)
                            : static_cast<double>(budget + 1));
  }
  std::sort(numeric.begin(), numeric.end());
  return numeric[numeric.size() / 2];
}

void print_guided_table() {
  constexpr std::size_t kBudget = 96;
  constexpr std::uint64_t kSeeds[] = {1, 2, 3, 4, 5, 6, 7};
  std::printf("=== Guided vs static sessions-to-first-bug "
              "(wrong-prior start, budget %zu, %zu seeds) ===\n",
              kBudget, std::size(kSeeds));
  std::printf("%-22s %-28s %-28s %6s %6s\n", "scenario",
              "static per-seed", "guided per-seed", "med(s)", "med(g)");
  for (const BenchScenario& entry : kScenarios) {
    const scenario::Scenario* s =
        scenario::ScenarioRegistry::builtin().find(entry.name);
    if (s == nullptr) continue;
    std::vector<std::optional<std::size_t>> st, gd;
    std::string st_text, gd_text;
    for (const std::uint64_t seed : kSeeds) {
      const core::PtestConfig config =
          wrong_prior_config(*s, entry.prior, seed);
      st.push_back(static_stfb(*s, config, kBudget));
      gd.push_back(guided_stfb(*s, config, kBudget));
      st_text += (st.back() ? std::to_string(*st.back()) : "-") + " ";
      gd_text += (gd.back() ? std::to_string(*gd.back()) : "-") + " ";
    }
    std::printf("%-22s %-28s %-28s %6.0f %6.0f\n", entry.name,
                st_text.c_str(), gd_text.c_str(), median_stfb(st, kBudget),
                median_stfb(gd, kBudget));
  }
  std::printf("('-' = oracle not reached within the budget; misses count "
              "as budget+1 in the median)\n\n");
}

const int registered = [] {
  bench::register_report("guided", print_guided_table);

  // The timed pass: wall cost of guided campaigns over a seed sweep on
  // one hang-class scenario, with both modes' median sessions-to-first-
  // bug attached as counters so the CI regression gate can watch the
  // effectiveness metric, not just the wall time.
  bench::register_benchmark("guided/sessions_to_first_bug",
                            [](bench::Context& ctx) {
    const scenario::Scenario* s =
        scenario::ScenarioRegistry::builtin().find("livelock-backoff");
    const std::size_t budget = ctx.scaled<std::size_t>(96, 48);
    const std::size_t seed_count = ctx.scaled<std::size_t>(5, 3);

    std::vector<std::optional<std::size_t>> st, gd;
    for (std::uint64_t seed = 1; seed <= seed_count; ++seed) {
      const core::PtestConfig config =
          wrong_prior_config(*s, kNoSuspendPriorPd, seed);
      st.push_back(static_stfb(*s, config, budget));
      gd.push_back(guided_stfb(*s, config, budget));
    }
    ctx.set_counter("static_sessions_to_first_bug_median",
                    median_stfb(st, budget));
    ctx.set_counter("guided_sessions_to_first_bug_median",
                    median_stfb(gd, budget));

    const core::PtestConfig config =
        wrong_prior_config(*s, kNoSuspendPriorPd, 1);
    ctx.measure([&] {
      guided::GuidedCampaign campaign(config, s->setup,
                                      guided_options(*s, budget));
      bench::do_not_optimize(campaign.run().campaign.total_runs);
    });
  });

  // Epoch-loop overhead in isolation: a guided campaign that never
  // finds a bug (clean scenario) — refine/recompile cost per epoch.
  bench::register_benchmark("guided/epoch_overhead",
                            [](bench::Context& ctx) {
    const scenario::Scenario* s =
        scenario::ScenarioRegistry::builtin().find("quicksort-clean");
    core::PtestConfig config = s->config;
    config.seed = 5;
    guided::GuidedOptions options;
    options.max_epochs = ctx.scaled<std::size_t>(6, 3);
    options.sessions_per_epoch = 2;
    options.stop_on_bug = false;
    options.plateau_window = 0;
    ctx.set_items_per_call(static_cast<double>(options.max_epochs));
    ctx.measure([&] {
      guided::GuidedCampaign campaign(config, s->setup, options);
      bench::do_not_optimize(campaign.run().refinements);
    });
  });
  return 0;
}();

}  // namespace
