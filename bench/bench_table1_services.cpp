// Paper Table I: pCore kernel services for task management.
// Regenerates the table with measured costs on the simulated platform:
// remote round-trip latency in virtual ticks (command post -> ack) through
// the pCore Bridge, plus host wall-clock per direct service call.
#include <cstdio>

#include "harness.hpp"
#include "ptest/bridge/committee.hpp"
#include "ptest/pcore/programs.hpp"

namespace {

using namespace ptest;

struct Stack {
  sim::Soc soc;
  pcore::PcoreKernel kernel;
  bridge::Channel channel{soc};
  bridge::Committee committee{channel, kernel};

  Stack() {
    kernel.register_program(1, [](std::uint32_t) {
      return std::make_unique<pcore::IdleProgram>();
    });
    soc.attach(committee);
    soc.attach(kernel);
  }

  /// Posts one command; returns ticks until its ack arrives.
  sim::Tick round_trip(bridge::Command command) {
    static std::uint32_t seq = 1;
    command.seq = seq++;
    const sim::Tick start = soc.now();
    if (!channel.post_command(soc, command)) return 0;
    for (int i = 0; i < 1000; ++i) {
      (void)soc.step();
      if (const auto response = channel.take_response(soc)) {
        return soc.now() - start;
      }
    }
    return 0;
  }
};

void print_table() {
  std::printf("=== Table I: pCore kernel services (simulated OMAP5912) ===\n");
  std::printf("%-14s | %-4s | %-34s | round-trip (ticks)\n", "service",
              "abbr", "description");

  Stack stack;
  bridge::Command tc;
  tc.service = bridge::Service::kTaskCreate;
  tc.priority = 5;
  tc.program_id = 1;
  const sim::Tick tc_ticks = stack.round_trip(tc);
  // The TC above left task 0 alive; reuse it for the rest.
  const auto one = [&](bridge::Service service, pcore::Priority priority) {
    bridge::Command command;
    command.service = service;
    command.task = 0;
    command.priority = priority;
    command.program_id = 1;
    return stack.round_trip(command);
  };
  const sim::Tick ts_ticks = one(bridge::Service::kTaskSuspend, 0);
  const sim::Tick tr_ticks = one(bridge::Service::kTaskResume, 0);
  const sim::Tick tch_ticks = one(bridge::Service::kTaskChanprio, 9);
  const sim::Tick ty_ticks = one(bridge::Service::kTaskYield, 0);
  // Recreate for TD.
  const sim::Tick tc2 = stack.round_trip(tc);
  (void)tc2;
  const sim::Tick td_ticks = one(bridge::Service::kTaskDelete, 0);

  const auto row = [](const char* name, const char* abbr, const char* desc,
                      sim::Tick ticks) {
    std::printf("%-14s | %-4s | %-34s | %llu\n", name, abbr, desc,
                static_cast<unsigned long long>(ticks));
  };
  row("task_create", "TC", "Create a task", tc_ticks);
  row("task_delete", "TD", "Delete a task", td_ticks);
  row("task_suspend", "TS", "Suspend a task", ts_ticks);
  row("task_resume", "TR", "Resume a task", tr_ticks);
  row("task_chanprio", "TCH", "Change the priority of a task", tch_ticks);
  row("task_yield", "TY", "Terminate the current running task", ty_ticks);
  std::printf("\n");
}

const int registered = [] {
  bench::register_report("table1_services", print_table);

  bench::register_benchmark(
      "table1_services/direct_create_delete", [](bench::Context& ctx) {
        pcore::PcoreKernel kernel;
        kernel.register_program(1, [](std::uint32_t) {
          return std::make_unique<pcore::IdleProgram>();
        });
        ctx.measure([&] {
          pcore::TaskId task = pcore::kInvalidTask;
          bench::do_not_optimize(kernel.task_create(1, 0, 5, task));
          bench::do_not_optimize(kernel.task_delete(task));
        });
      });

  bench::register_benchmark(
      "table1_services/direct_suspend_resume", [](bench::Context& ctx) {
        pcore::PcoreKernel kernel;
        kernel.register_program(1, [](std::uint32_t) {
          return std::make_unique<pcore::IdleProgram>();
        });
        pcore::TaskId task = pcore::kInvalidTask;
        (void)kernel.task_create(1, 0, 5, task);
        ctx.measure([&] {
          bench::do_not_optimize(kernel.task_suspend(task));
          bench::do_not_optimize(kernel.task_resume(task));
        });
      });

  bench::register_benchmark(
      "table1_services/remote_round_trip", [](bench::Context& ctx) {
        Stack stack;
        bridge::Command tc;
        tc.service = bridge::Service::kTaskCreate;
        tc.priority = 5;
        tc.program_id = 1;
        (void)stack.round_trip(tc);
        ctx.measure([&] {
          bridge::Command command;
          command.service = bridge::Service::kTaskChanprio;
          command.task = 0;
          command.priority = 7;
          bench::do_not_optimize(stack.round_trip(command));
        });
      });
  return 0;
}();

}  // namespace
