// Shared benchmark harness: registration, measurement, stats, JSON.
//
// Every bench_* binary and the bench_all driver are thin shells around
// this harness — benchmark bodies register themselves at static-init
// time, and run_main() supplies the uniform CLI:
//
//   --filter SUBSTR       run only benchmarks whose name contains SUBSTR
//   --repetitions N       timed samples per benchmark (default 10)
//   --warmup N            untimed warmup calls per benchmark (default 2;
//                         0 = none, so the first sample measures the
//                         cold path and adaptive batching stays off)
//   --smoke               fast deterministic pass: 3 repetitions, 1
//                         warmup, no inner batching, reports skipped,
//                         Context::smoke() true so bodies shrink budgets
//   --json PATH           write machine-readable results (the
//                         BENCH_results.json schema; see README)
//   --tables / --no-tables  force the paper-figure report tables on/off
//   --list                print registered benchmark names and exit
//
// Measurement model: a benchmark body is called once and does its own
// setup (untimed), then hands the hot region to Context::measure(fn).
// The harness times `repetitions` samples of fn — batching multiple fn
// calls per sample when a single call is too fast to time reliably —
// and reports min/mean/median/p95/max/stddev wall time, plus optional
// throughput (set_items_per_call) and named counters (set_counter).
//
// Replaces the Google Benchmark dependency: the harness is plain C++20
// on std::chrono, so the bench tree builds wherever the library does.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace ptest::bench {

/// Defeats dead-code elimination of a benchmark result without costing
/// a store (the Google Benchmark idiom, minus the library).
template <typename T>
inline void do_not_optimize(T&& value) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "g"(&value) : "memory");
#else
  static volatile const void* sink;
  sink = &value;
#endif
}

/// Order statistics over one benchmark's repetition samples.
struct Stats {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;  ///< midpoint (mean of the two middle samples)
  double p95 = 0.0;     ///< nearest-rank 95th percentile
  double stddev = 0.0;  ///< population standard deviation
};

/// Computes Stats over `samples` (empty input -> all zeros).
[[nodiscard]] Stats compute_stats(std::vector<double> samples);

class Context;
using BenchFn = std::function<void(Context&)>;

/// Handed to each benchmark body: carries the run mode in, the timing
/// samples and counters out.
class Context {
 public:
  Context(bool smoke, int repetitions, int warmup, double min_sample_seconds)
      : smoke_(smoke),
        repetitions_(repetitions),
        warmup_(warmup),
        min_sample_seconds_(min_sample_seconds) {}

  /// True under --smoke: bodies should shrink budgets (fewer sessions,
  /// lower tick limits) so the whole suite stays CI-fast.
  [[nodiscard]] bool smoke() const noexcept { return smoke_; }

  /// Convenience: `full` normally, `reduced` under --smoke.
  template <typename T>
  [[nodiscard]] T scaled(T full, T reduced) const noexcept {
    return smoke_ ? reduced : full;
  }

  /// Times the hot region: warmup calls, then `repetitions` samples,
  /// each covering `inner_iterations()` calls of fn when one call is
  /// too fast for the clock (never batched under --smoke).  Call
  /// exactly once per benchmark body, after setup.  When the process
  /// TraceRecorder is enabled each repetition records a span named by
  /// set_trace_name (the harness sets the benchmark's registry name).
  void measure(const std::function<void()>& fn);

  /// Span name for measure()'s repetitions; must outlive the recorder
  /// drain (registry-owned benchmark names qualify).
  void set_trace_name(const char* name) noexcept { trace_name_ = name; }

  /// Work items per fn call, for items/sec throughput in the results.
  void set_items_per_call(double items) noexcept { items_per_call_ = items; }

  /// Attaches a named counter (e.g. sessions_per_sec) to the result.
  void set_counter(const std::string& name, double value) {
    counters_.emplace_back(name, value);
  }

  // Harness-side accessors (results assembly and tests).
  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] std::uint64_t inner_iterations() const noexcept {
    return inner_iterations_;
  }
  [[nodiscard]] double items_per_call() const noexcept {
    return items_per_call_;
  }
  [[nodiscard]] const std::vector<std::pair<std::string, double>>& counters()
      const noexcept {
    return counters_;
  }

 private:
  bool smoke_;
  int repetitions_;
  int warmup_;
  double min_sample_seconds_;
  const char* trace_name_ = "bench:rep";
  std::uint64_t inner_iterations_ = 1;
  double items_per_call_ = 0.0;
  std::vector<double> samples_;  // seconds per sample
  std::vector<std::pair<std::string, double>> counters_;
};

struct Benchmark {
  std::string name;
  BenchFn fn;
};

/// A "report" is a bench binary's paper-figure table printer: free-form
/// stdout, run before the timed benchmarks (skipped under --smoke).
struct Report {
  std::string name;
  std::function<void()> fn;
};

/// Registered benchmarks/reports.  Benchmarks register into global() at
/// static-init time; tests build private registries.
class Registry {
 public:
  static Registry& global();

  void add(std::string name, BenchFn fn);
  void add_report(std::string name, std::function<void()> fn);

  [[nodiscard]] const std::vector<Benchmark>& benchmarks() const noexcept {
    return benchmarks_;
  }
  [[nodiscard]] const std::vector<Report>& reports() const noexcept {
    return reports_;
  }

 private:
  std::vector<Benchmark> benchmarks_;
  std::vector<Report> reports_;
};

/// Static-init registration hooks; both return 0 so bench files can run
/// them from an initializer:  const int reg = [] { ... return 0; }();
int register_benchmark(std::string name, BenchFn fn);
int register_report(std::string name, std::function<void()> fn);

struct Options {
  std::string filter;             // substring; empty = everything
  int repetitions = 10;
  int warmup = 2;
  bool smoke = false;
  std::string json_path;          // empty = no JSON output
  bool list = false;
  int run_reports = -1;           // -1 auto (on unless smoke), 0 off, 1 on
  double min_sample_seconds = 1e-3;

  /// Repetition/warmup/batching actually in effect (smoke overrides).
  [[nodiscard]] int effective_repetitions() const noexcept {
    return smoke ? 3 : repetitions;
  }
  [[nodiscard]] int effective_warmup() const noexcept {
    return smoke ? 1 : warmup;
  }
  [[nodiscard]] bool reports_enabled() const noexcept {
    return run_reports == -1 ? !smoke : run_reports != 0;
  }
};

/// Parses the uniform CLI.  Returns true on success; on failure fills
/// `error` (run_main prints it plus usage and exits 64).
bool parse_args(int argc, const char* const* argv, Options& options,
                std::string& error);

struct BenchmarkResult {
  std::string name;
  int repetitions = 0;
  std::uint64_t inner_iterations = 1;
  Stats wall_ms;                     // per-sample wall time, milliseconds
  double items_per_second = 0.0;     // 0 = body set no throughput
  std::vector<std::pair<std::string, double>> counters;
};

struct RunSummary {
  Options options;
  std::vector<BenchmarkResult> results;
};

/// Runs every registered benchmark matching options.filter (reports
/// first when enabled) and returns the collected results.
RunSummary run_benchmarks(const Registry& registry, const Options& options);

/// Serializes a summary to the BENCH_results.json schema.
void write_json(const RunSummary& summary, std::ostream& out);

/// Human-readable results table to stdout.
void print_summary(const RunSummary& summary);

/// Full CLI entry point over Registry::global(); bench_main.cpp calls
/// this from main().  Returns the process exit code.
int run_main(int argc, char** argv);

}  // namespace ptest::bench
