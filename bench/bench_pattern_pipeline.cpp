// Microbenchmarks of the pattern pipeline (Algorithm 1's phases in
// isolation): regex -> NFA -> DFA construction, PFA attachment, pattern
// sampling, and the merge operators at several n — plus the aggregate
// core::compile() that a CompiledTestPlan pays once per campaign arm,
// contrasted with the per-seed generate_and_merge() it amortizes.
#include <benchmark/benchmark.h>

#include "ptest/bridge/protocol.hpp"
#include "ptest/core/adaptive_test.hpp"
#include "ptest/pattern/generator.hpp"
#include "ptest/pattern/merger.hpp"

namespace {

using namespace ptest;

constexpr const char* kEq2 = "TC((TCH)* | TS TR (TCH)*)* (TD$ | TY$)";

void BM_RegexParse(benchmark::State& state) {
  for (auto _ : state) {
    pfa::Alphabet alphabet;
    benchmark::DoNotOptimize(pfa::Regex::parse(kEq2, alphabet));
  }
}
BENCHMARK(BM_RegexParse);

void BM_NfaConstruction(benchmark::State& state) {
  pfa::Alphabet alphabet;
  const pfa::Regex re = pfa::Regex::parse(kEq2, alphabet);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pfa::Nfa::from_regex(re));
  }
}
BENCHMARK(BM_NfaConstruction);

void BM_DfaSubsetConstruction(benchmark::State& state) {
  pfa::Alphabet alphabet;
  const pfa::Regex re = pfa::Regex::parse(kEq2, alphabet);
  const pfa::Nfa nfa = pfa::Nfa::from_regex(re);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pfa::Dfa::from_nfa(nfa));
  }
}
BENCHMARK(BM_DfaSubsetConstruction);

void BM_DfaMinimize(benchmark::State& state) {
  pfa::Alphabet alphabet;
  const pfa::Regex re = pfa::Regex::parse(kEq2, alphabet);
  const pfa::Dfa dfa = pfa::Dfa::from_nfa(pfa::Nfa::from_regex(re));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dfa.minimized());
  }
}
BENCHMARK(BM_DfaMinimize);

struct Model {
  pfa::Alphabet alphabet;
  pfa::Pfa pfa;
  Model() : pfa(build()) {}
  pfa::Pfa build() {
    bridge::intern_service_alphabet(alphabet);
    const pfa::Regex re = pfa::Regex::parse(kEq2, alphabet);
    return pfa::Pfa::from_regex(re, pfa::DistributionSpec{}, alphabet);
  }
};

void BM_MergeOp(benchmark::State& state) {
  Model model;
  const auto op = static_cast<pattern::MergeOp>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  pattern::PatternGenerator generator(model.pfa, {.size = 16},
                                      support::Rng(5));
  const auto patterns = generator.generate(n);
  pattern::MergerOptions options;
  options.op = op;
  options.cyclic_break_symbols = {model.alphabet.at("TS"), model.alphabet.at("TR")};
  for (auto _ : state) {
    pattern::PatternMerger merger(options, support::Rng(7));
    benchmark::DoNotOptimize(merger.merge(patterns));
  }
  state.SetLabel(pattern::to_string(op));
}
BENCHMARK(BM_MergeOp)
    ->Args({static_cast<long>(pattern::MergeOp::kRoundRobin), 4})
    ->Args({static_cast<long>(pattern::MergeOp::kRoundRobin), 16})
    ->Args({static_cast<long>(pattern::MergeOp::kRandom), 16})
    ->Args({static_cast<long>(pattern::MergeOp::kCyclic), 16})
    ->Args({static_cast<long>(pattern::MergeOp::kShuffle), 16});

// The whole fixed artifact (alphabet interning + regex parse + NFA +
// DFA + PFA + option resolution) — what compile-per-run paid on every
// session before the compile/execute split.
void BM_CompileTestPlan(benchmark::State& state) {
  core::PtestConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compile(config));
  }
}
BENCHMARK(BM_CompileTestPlan);

// The per-seed remainder once a plan exists: sampling n patterns and
// merging them.  The ratio to BM_CompileTestPlan is the per-session
// overhead the plan cache removes.
void BM_GenerateAndMergeFromPlan(benchmark::State& state) {
  core::PtestConfig config;
  config.n = static_cast<std::size_t>(state.range(0));
  const core::CompiledTestPlanPtr plan = core::compile(config);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::generate_and_merge(*plan, ++seed));
  }
}
BENCHMARK(BM_GenerateAndMergeFromPlan)->Arg(4)->Arg(16);

void BM_EnumerateInterleavings(benchmark::State& state) {
  Model model;
  pattern::PatternGenerator generator(model.pfa, {.size = 3},
                                      support::Rng(5));
  const auto patterns = generator.generate(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pattern::PatternMerger::enumerate_interleavings(
        patterns, static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_EnumerateInterleavings)->Arg(64)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
