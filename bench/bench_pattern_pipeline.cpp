// Microbenchmarks of the pattern pipeline (Algorithm 1's phases in
// isolation): regex -> NFA -> DFA construction, PFA attachment, pattern
// sampling, and the merge operators at several n — plus the aggregate
// core::compile() that a CompiledTestPlan pays once per campaign arm,
// contrasted with the per-seed generate_and_merge() it amortizes.
#include <string>

#include "harness.hpp"
#include "ptest/bridge/protocol.hpp"
#include "ptest/core/adaptive_test.hpp"
#include "ptest/pattern/generator.hpp"
#include "ptest/pattern/merger.hpp"

namespace {

using namespace ptest;

constexpr const char* kEq2 = "TC((TCH)* | TS TR (TCH)*)* (TD$ | TY$)";

struct Model {
  pfa::Alphabet alphabet;
  pfa::Pfa pfa;
  Model() : pfa(build()) {}
  pfa::Pfa build() {
    bridge::intern_service_alphabet(alphabet);
    const pfa::Regex re = pfa::Regex::parse(kEq2, alphabet);
    return pfa::Pfa::from_regex(re, pfa::DistributionSpec{}, alphabet);
  }
};

void register_merge_op(pattern::MergeOp op, std::size_t n) {
  bench::register_benchmark(
      "pattern_pipeline/merge_op/" + std::string(pattern::to_string(op)) +
          "/n=" + std::to_string(n),
      [op, n](bench::Context& ctx) {
        Model model;
        pattern::PatternGenerator generator(model.pfa, {.size = 16},
                                            support::Rng(5));
        const auto patterns = generator.generate(n);
        pattern::MergerOptions options;
        options.op = op;
        options.cyclic_break_symbols = {model.alphabet.at("TS"),
                                        model.alphabet.at("TR")};
        ctx.measure([&] {
          pattern::PatternMerger merger(options, support::Rng(7));
          bench::do_not_optimize(merger.merge(patterns));
        });
      });
}

const int registered = [] {
  bench::register_benchmark("pattern_pipeline/regex_parse",
                            [](bench::Context& ctx) {
                              ctx.measure([&] {
                                pfa::Alphabet alphabet;
                                bench::do_not_optimize(
                                    pfa::Regex::parse(kEq2, alphabet));
                              });
                            });

  bench::register_benchmark(
      "pattern_pipeline/nfa_construction", [](bench::Context& ctx) {
        pfa::Alphabet alphabet;
        const pfa::Regex re = pfa::Regex::parse(kEq2, alphabet);
        ctx.measure([&] { bench::do_not_optimize(pfa::Nfa::from_regex(re)); });
      });

  bench::register_benchmark(
      "pattern_pipeline/dfa_subset_construction", [](bench::Context& ctx) {
        pfa::Alphabet alphabet;
        const pfa::Regex re = pfa::Regex::parse(kEq2, alphabet);
        const pfa::Nfa nfa = pfa::Nfa::from_regex(re);
        ctx.measure([&] { bench::do_not_optimize(pfa::Dfa::from_nfa(nfa)); });
      });

  bench::register_benchmark(
      "pattern_pipeline/dfa_minimize", [](bench::Context& ctx) {
        pfa::Alphabet alphabet;
        const pfa::Regex re = pfa::Regex::parse(kEq2, alphabet);
        const pfa::Dfa dfa = pfa::Dfa::from_nfa(pfa::Nfa::from_regex(re));
        ctx.measure([&] { bench::do_not_optimize(dfa.minimized()); });
      });

  register_merge_op(pattern::MergeOp::kRoundRobin, 4);
  register_merge_op(pattern::MergeOp::kRoundRobin, 16);
  register_merge_op(pattern::MergeOp::kRandom, 16);
  register_merge_op(pattern::MergeOp::kCyclic, 16);
  register_merge_op(pattern::MergeOp::kShuffle, 16);

  // The whole fixed artifact (alphabet interning + regex parse + NFA +
  // DFA + PFA + option resolution) — what compile-per-run paid on every
  // session before the compile/execute split.
  bench::register_benchmark(
      "pattern_pipeline/compile_test_plan", [](bench::Context& ctx) {
        core::PtestConfig config;
        ctx.measure([&] { bench::do_not_optimize(core::compile(config)); });
      });

  // The per-seed remainder once a plan exists: sampling n patterns and
  // merging them.  The ratio to compile_test_plan is the per-session
  // overhead the plan cache removes.
  for (const std::size_t n : {std::size_t{4}, std::size_t{16}}) {
    bench::register_benchmark(
        "pattern_pipeline/generate_and_merge_from_plan/n=" +
            std::to_string(n),
        [n](bench::Context& ctx) {
          core::PtestConfig config;
          config.n = n;
          const core::CompiledTestPlanPtr plan = core::compile(config);
          std::uint64_t seed = 0;
          ctx.measure([&] {
            bench::do_not_optimize(core::generate_and_merge(*plan, ++seed));
          });
        });
  }

  // The sampling hot path head to head: the allocate-per-call sample()
  // wrapper vs sample_into() on a warm per-worker scratch.  Same PFA,
  // same seeds, same walks — the delta is pure allocation + table
  // traffic, the win the scratch-reuse API exists for.
  bench::register_benchmark(
      "pattern_pipeline/sample_per_call_alloc", [](bench::Context& ctx) {
        Model model;
        support::Rng rng(11);
        pfa::WalkOptions options;
        options.size = 16;
        ctx.set_items_per_call(1.0);
        ctx.measure(
            [&] { bench::do_not_optimize(model.pfa.sample(rng, options)); });
      });

  bench::register_benchmark(
      "pattern_pipeline/sample_into_scratch_reuse", [](bench::Context& ctx) {
        Model model;
        support::Rng rng(11);
        pfa::WalkOptions options;
        options.size = 16;
        pfa::WalkScratch scratch;
        scratch.reserve(options);
        ctx.set_items_per_call(1.0);
        ctx.measure([&] {
          bench::do_not_optimize(model.pfa.sample_into(scratch, rng, options));
        });
        ctx.set_counter("reuse_hits", static_cast<double>(scratch.reuse_hits()));
        ctx.set_counter("alloc_bytes_saved",
                        static_cast<double>(scratch.alloc_bytes_saved()));
      });

  for (const std::size_t cap : {std::size_t{64}, std::size_t{1024}}) {
    bench::register_benchmark(
        "pattern_pipeline/enumerate_interleavings/cap=" + std::to_string(cap),
        [cap](bench::Context& ctx) {
          Model model;
          pattern::PatternGenerator generator(model.pfa, {.size = 3},
                                              support::Rng(5));
          const auto patterns = generator.generate(3);
          ctx.measure([&] {
            bench::do_not_optimize(
                pattern::PatternMerger::enumerate_interleavings(patterns,
                                                                cap));
          });
        });
  }
  return 0;
}();

}  // namespace
