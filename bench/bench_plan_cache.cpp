// Plan cache: what the compile/execute split (test_plan.hpp) buys.
//
// Before the split every campaign session re-ran the full
// regex -> NFA -> DFA -> PFA pipeline and re-parsed the distribution
// text; the plan cache hoists that out of the per-run loop, compiling
// one immutable CompiledTestPlan per arm that all worker threads share.
//
// Two claims measured here:
//
//   1. Correctness — CampaignResults with the plan cache on and off are
//      bit-identical (checked in the report table; it aborts on
//      mismatch).
//   2. Speedup — a >= 64-run campaign is faster compiling once than
//      compiling per run, and the pure pattern pipeline (no session)
//      shows the raw compile overhead directly.
//
// The campaign benchmarks also export the new CampaignResult::metrics
// counters (plan_cache_hits / plan_compiles / sessions_per_second), so
// BENCH_results.json records *why* one configuration is faster.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness.hpp"
#include "ptest/core/campaign.hpp"
#include "ptest/core/replay.hpp"
#include "ptest/workload/quicksort.hpp"

namespace {

using namespace ptest;

// Fig. 5 distribution text: makes each compile include a PD parse, as
// real campaigns do.
const char* kFig5 =
    "TC -> TCH = 0.6; TC -> TS = 0.2; TC -> TD = 0.1; TC -> TY = 0.1;"
    "TCH -> TCH = 0.6; TCH -> TS = 0.2; TCH -> TD = 0.1; TCH -> TY = 0.1;"
    "TS -> TR = 1.0;"
    "TR -> TCH = 0.4; TR -> TS = 0.3; TR -> TY = 0.2; TR -> TD = 0.1";

core::PtestConfig base_config() {
  core::PtestConfig config;
  config.n = 2;
  config.s = 4;
  config.program_id = workload::kQuicksortProgramId;
  return config;
}

core::Campaign make_campaign(std::size_t budget, bool precompile,
                             std::size_t jobs) {
  std::vector<core::CampaignArm> arms{
      {"rr/fig5", pattern::MergeOp::kRoundRobin, kFig5},
      {"cyclic/uniform", pattern::MergeOp::kCyclic, ""},
  };
  core::CampaignOptions options;
  options.budget = budget;
  options.jobs = jobs;
  options.precompile = precompile;
  return core::Campaign(base_config(), arms, workload::register_quicksort,
                        options);
}

bool identical(const core::CampaignResult& a, const core::CampaignResult& b) {
  if (a.total_runs != b.total_runs ||
      a.total_detections != b.total_detections || a.best_arm != b.best_arm ||
      a.arm_stats.size() != b.arm_stats.size() ||
      a.distinct_failures.size() != b.distinct_failures.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.arm_stats.size(); ++i) {
    if (a.arm_stats[i].runs != b.arm_stats[i].runs ||
        a.arm_stats[i].detections != b.arm_stats[i].detections) {
      return false;
    }
  }
  auto it = b.distinct_failures.begin();
  for (const auto& entry : a.distinct_failures) {
    if (entry.first != it->first) return false;
    ++it;
  }
  return true;
}

double time_campaign_ms(std::size_t budget, bool precompile,
                        std::size_t jobs, int repetitions) {
  // Min of several repetitions: robust against scheduler noise, and the
  // honest number for "how fast can this go".
  double best = 1e300;
  for (int rep = 0; rep < repetitions; ++rep) {
    core::Campaign campaign = make_campaign(budget, precompile, jobs);
    const auto start = std::chrono::steady_clock::now();
    const core::CampaignResult result = campaign.run();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    bench::do_not_optimize(result);
    if (ms < best) best = ms;
  }
  return best;
}

void print_table() {
  constexpr std::size_t kBudget = 64;
  constexpr int kReps = 5;

  const core::CampaignResult cached = make_campaign(kBudget, true, 1).run();
  const core::CampaignResult uncached = make_campaign(kBudget, false, 1).run();
  if (!identical(cached, uncached)) {
    std::fprintf(stderr,
                 "FATAL: plan-cache result differs from compile-per-run\n");
    std::exit(1);
  }

  std::printf("=== Plan cache: %zu-session campaign, 2 arms, quicksort "
              "workload ===\n", kBudget);
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    const double per_run = time_campaign_ms(kBudget, false, jobs, kReps);
    const double once = time_campaign_ms(kBudget, true, jobs, kReps);
    std::printf("jobs=%zu: compile-per-run %8.2f ms | compile-once %8.2f ms "
                "| speedup %.2fx (identical results: yes)\n",
                jobs, per_run, once, per_run / once);
  }
  std::printf("plan_cache_hits=%llu plan_compiles=%llu (compile-once) vs "
              "plan_compiles=%llu (compile-per-run)\n\n",
              static_cast<unsigned long long>(cached.metrics.plan_cache_hits),
              static_cast<unsigned long long>(cached.metrics.plan_compiles),
              static_cast<unsigned long long>(
                  uncached.metrics.plan_compiles));
}

const int registered = [] {
  bench::register_report("plan_cache", print_table);

  bench::register_benchmark("plan_cache/compile_plan",
                            [](bench::Context& ctx) {
                              core::PtestConfig config = base_config();
                              config.distributions = kFig5;
                              ctx.measure([&] {
                                bench::do_not_optimize(core::compile(config));
                              });
                            });

  bench::register_benchmark(
      "plan_cache/pipeline_precompiled", [](bench::Context& ctx) {
        core::PtestConfig config = base_config();
        config.distributions = kFig5;
        const core::CompiledTestPlanPtr plan = core::compile(config);
        std::uint64_t seed = 0;
        ctx.measure([&] {
          bench::do_not_optimize(core::generate_and_merge(*plan, ++seed));
        });
      });

  bench::register_benchmark(
      "plan_cache/pipeline_compile_each_run", [](bench::Context& ctx) {
        core::PtestConfig config = base_config();
        config.distributions = kFig5;
        ctx.measure([&] {
          config.seed++;
          pfa::Alphabet alphabet;
          bench::do_not_optimize(core::generate_and_merge(config, alphabet));
        });
      });

  for (const bool precompile : {false, true}) {
    bench::register_benchmark(
        std::string("plan_cache/campaign/") +
            (precompile ? "compile-once" : "compile-per-run"),
        [precompile](bench::Context& ctx) {
          const std::size_t budget = ctx.scaled<std::size_t>(64, 8);
          core::CampaignResult last;
          ctx.measure([&] {
            core::Campaign campaign = make_campaign(budget, precompile, 1);
            last = campaign.run();
            bench::do_not_optimize(last);
          });
          ctx.set_items_per_call(static_cast<double>(budget));
          ctx.set_counter("sessions_per_sec",
                          last.metrics.sessions_per_second());
          ctx.set_counter("plan_cache_hits",
                          static_cast<double>(last.metrics.plan_cache_hits));
          ctx.set_counter("plan_compiles",
                          static_cast<double>(last.metrics.plan_compiles));
        });
  }
  return 0;
}();

}  // namespace
