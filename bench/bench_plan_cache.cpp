// Plan cache: what the compile/execute split (test_plan.hpp) buys.
//
// Before the split every campaign session re-ran the full
// regex -> NFA -> DFA -> PFA pipeline and re-parsed the distribution
// text; the plan cache hoists that out of the per-run loop, compiling
// one immutable CompiledTestPlan per arm that all worker threads share.
//
// Two claims measured here:
//
//   1. Correctness — CampaignResults with the plan cache on and off are
//      bit-identical (checked before the timings; the bench aborts on
//      mismatch).
//   2. Speedup — a >= 64-run campaign is faster compiling once than
//      compiling per run, and the pure pattern pipeline (no session)
//      shows the raw compile overhead directly.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "ptest/core/campaign.hpp"
#include "ptest/core/replay.hpp"
#include "ptest/workload/quicksort.hpp"

namespace {

using namespace ptest;

// Fig. 5 distribution text: makes each compile include a PD parse, as
// real campaigns do.
const char* kFig5 =
    "TC -> TCH = 0.6; TC -> TS = 0.2; TC -> TD = 0.1; TC -> TY = 0.1;"
    "TCH -> TCH = 0.6; TCH -> TS = 0.2; TCH -> TD = 0.1; TCH -> TY = 0.1;"
    "TS -> TR = 1.0;"
    "TR -> TCH = 0.4; TR -> TS = 0.3; TR -> TY = 0.2; TR -> TD = 0.1";

core::PtestConfig base_config() {
  core::PtestConfig config;
  config.n = 2;
  config.s = 4;
  config.program_id = workload::kQuicksortProgramId;
  return config;
}

core::Campaign make_campaign(std::size_t budget, bool precompile,
                             std::size_t jobs) {
  std::vector<core::CampaignArm> arms{
      {"rr/fig5", pattern::MergeOp::kRoundRobin, kFig5},
      {"cyclic/uniform", pattern::MergeOp::kCyclic, ""},
  };
  core::CampaignOptions options;
  options.budget = budget;
  options.jobs = jobs;
  options.precompile = precompile;
  return core::Campaign(base_config(), arms, workload::register_quicksort,
                        options);
}

bool identical(const core::CampaignResult& a, const core::CampaignResult& b) {
  if (a.total_runs != b.total_runs ||
      a.total_detections != b.total_detections || a.best_arm != b.best_arm ||
      a.arm_stats.size() != b.arm_stats.size() ||
      a.distinct_failures.size() != b.distinct_failures.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.arm_stats.size(); ++i) {
    if (a.arm_stats[i].runs != b.arm_stats[i].runs ||
        a.arm_stats[i].detections != b.arm_stats[i].detections) {
      return false;
    }
  }
  auto it = b.distinct_failures.begin();
  for (const auto& entry : a.distinct_failures) {
    if (entry.first != it->first) return false;
    ++it;
  }
  return true;
}

double time_campaign_ms(std::size_t budget, bool precompile,
                        std::size_t jobs, int repetitions) {
  // Min of several repetitions: robust against scheduler noise, and the
  // honest number for "how fast can this go".
  double best = 1e300;
  for (int rep = 0; rep < repetitions; ++rep) {
    core::Campaign campaign = make_campaign(budget, precompile, jobs);
    const auto start = std::chrono::steady_clock::now();
    const core::CampaignResult result = campaign.run();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    benchmark::DoNotOptimize(result);
    if (ms < best) best = ms;
  }
  return best;
}

void print_table() {
  constexpr std::size_t kBudget = 64;
  constexpr int kReps = 5;

  const core::CampaignResult cached = make_campaign(kBudget, true, 1).run();
  const core::CampaignResult uncached = make_campaign(kBudget, false, 1).run();
  if (!identical(cached, uncached)) {
    std::fprintf(stderr,
                 "FATAL: plan-cache result differs from compile-per-run\n");
    std::exit(1);
  }

  std::printf("=== Plan cache: %zu-session campaign, 2 arms, quicksort "
              "workload ===\n", kBudget);
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    const double per_run = time_campaign_ms(kBudget, false, jobs, kReps);
    const double once = time_campaign_ms(kBudget, true, jobs, kReps);
    std::printf("jobs=%zu: compile-per-run %8.2f ms | compile-once %8.2f ms "
                "| speedup %.2fx (identical results: yes)\n",
                jobs, per_run, once, per_run / once);
  }
  std::printf("\n");
}

// --- microbenchmarks: where the time goes ----------------------------------

void BM_CompilePlan(benchmark::State& state) {
  core::PtestConfig config = base_config();
  config.distributions = kFig5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compile(config));
  }
}
BENCHMARK(BM_CompilePlan);

void BM_PipelinePrecompiled(benchmark::State& state) {
  core::PtestConfig config = base_config();
  config.distributions = kFig5;
  const core::CompiledTestPlanPtr plan = core::compile(config);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::generate_and_merge(*plan, ++seed));
  }
}
BENCHMARK(BM_PipelinePrecompiled);

void BM_PipelineCompileEachRun(benchmark::State& state) {
  core::PtestConfig config = base_config();
  config.distributions = kFig5;
  for (auto _ : state) {
    config.seed++;
    pfa::Alphabet alphabet;
    benchmark::DoNotOptimize(core::generate_and_merge(config, alphabet));
  }
}
BENCHMARK(BM_PipelineCompileEachRun);

void BM_CampaignPlanCache(benchmark::State& state) {
  const bool precompile = state.range(0) != 0;
  for (auto _ : state) {
    core::Campaign campaign = make_campaign(64, precompile, 1);
    benchmark::DoNotOptimize(campaign.run());
  }
  state.SetLabel(precompile ? "compile-once" : "compile-per-run");
}
BENCHMARK(BM_CampaignPlanCache)->Arg(0)->Arg(1)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
