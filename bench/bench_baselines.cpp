// Related-work comparison (paper §I): pTest vs. ConTest-style random
// noise vs. naive random commands vs. CHESS-style bounded systematic
// exploration, all hunting the philosopher deadlock on the same substrate.
// Expected shape: pTest-cyclic detects with the highest probability per
// run; ConTest noise lands between random and pTest; systematic
// exploration is certain on tiny spaces but pays a large run budget.
#include <cstdio>

#include "harness.hpp"
#include "ptest/baseline/noise.hpp"
#include "ptest/baseline/random_walk.hpp"
#include "ptest/baseline/systematic.hpp"
#include "ptest/workload/philosophers.hpp"

namespace {

using namespace ptest;

const char* kFig5 =
    "TC -> TCH = 0.6; TC -> TS = 0.2; TC -> TD = 0.1; TC -> TY = 0.1;"
    "TCH -> TCH = 0.6; TCH -> TS = 0.2; TCH -> TD = 0.1; TCH -> TY = 0.1;"
    "TS -> TR = 1.0;"
    "TR -> TCH = 0.4; TR -> TS = 0.3; TR -> TY = 0.2; TR -> TD = 0.1";

core::PtestConfig base_config() {
  core::PtestConfig config;
  config.distributions = kFig5;
  config.n = 3;
  config.s = 10;
  config.program_id = workload::kPhilosopherProgramId;
  config.max_ticks = 100000;
  config.command_spacing = 12;
  // Random command sequences leave stray tasks; give them time to finish
  // so no-termination false-positives don't pollute the comparison.
  config.detector.termination_horizon = 20000;
  return config;
}

core::WorkloadSetup buggy_setup() {
  return [](pcore::PcoreKernel& kernel) {
    (void)workload::register_philosophers(kernel, /*buggy=*/true,
                                          /*meals=*/500);
  };
}

bool is_deadlock(const core::SessionResult& result) {
  return result.outcome == core::Outcome::kBug && result.report &&
         result.report->kind == core::BugKind::kDeadlock;
}

void print_table() {
  constexpr int kSeeds = 40;
  pfa::Alphabet alphabet;
  const auto setup = buggy_setup();
  std::printf("=== Baselines: philosopher deadlock, %d runs each ===\n",
              kSeeds);
  std::printf("%-26s | %-10s | %-12s\n", "technique", "P(detect)",
              "note");

  // pTest with the cyclic merge operator.
  {
    core::PtestConfig config = base_config();
    config.op = pattern::MergeOp::kCyclic;
    int hits = 0;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      config.seed = seed;
      hits += is_deadlock(core::adaptive_test(config, alphabet, setup).session);
    }
    std::printf("%-26s | %8.1f%% | %s\n", "pTest (cyclic op)",
                100.0 * hits / kSeeds, "directed merge");
  }

  // ConTest-style noise over round-robin patterns.
  {
    const core::PtestConfig noisy =
        baseline::with_contest_noise(base_config(), {0.25, 8});
    core::PtestConfig config = noisy;
    int hits = 0;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      config.seed = seed;
      hits += is_deadlock(core::adaptive_test(config, alphabet, setup).session);
    }
    std::printf("%-26s | %8.1f%% | %s\n", "ConTest-style noise",
                100.0 * hits / kSeeds, "random schedule");
  }

  // Naive random command sequences.
  {
    core::PtestConfig config = base_config();
    int hits = 0;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      config.seed = seed;
      hits += is_deadlock(
          baseline::random_baseline_test(config, alphabet, setup).session);
    }
    std::printf("%-26s | %8.1f%% | %s\n", "random commands",
                100.0 * hits / kSeeds, "no model");
  }

  // CHESS-style systematic exploration (one shot, big run budget).
  {
    core::PtestConfig config = base_config();
    config.s = 4;  // keep the interleaving space enumerable
    baseline::SystematicOptions options;
    options.max_interleavings = 2048;
    options.max_runs = 512;
    const auto result =
        baseline::systematic_explore(config, alphabet, setup, options);
    std::printf("%-26s | %8s   | %zu runs, %zu interleavings%s\n",
                "CHESS-style systematic",
                result.found ? "found" : "not found", result.runs_executed,
                result.interleavings_total,
                result.exhausted_budget ? " (budget hit)" : "");
  }
  std::printf("\n");
}

const int registered = [] {
  bench::register_report("baselines", print_table);

  bench::register_benchmark(
      "baselines/contest_noise_run", [](bench::Context& ctx) {
        core::PtestConfig config =
            baseline::with_contest_noise(base_config(), {0.25, 8});
        config.max_ticks = ctx.scaled<sim::Tick>(100000, 20000);
        pfa::Alphabet alphabet;
        const auto setup = buggy_setup();
        std::uint64_t seed = 1;
        ctx.measure([&] {
          config.seed = seed++;
          bench::do_not_optimize(core::adaptive_test(config, alphabet, setup));
        });
      });
  return 0;
}();

}  // namespace
