// Paper Fig. 3: the simple PFA over (ac*d)|b.
// Regenerates the figure's quantitative content: closed-form word
// probabilities under the configured transition distribution, empirical
// frequencies from sampling, and sampling throughput.
#include <cstdio>
#include <map>

#include "harness.hpp"
#include "ptest/pfa/pfa.hpp"

namespace {

using namespace ptest;

struct Fig3 {
  pfa::Alphabet alphabet;
  pfa::Pfa pfa;
  Fig3() : pfa(build()) {}
  pfa::Pfa build() {
    const pfa::Regex re = pfa::Regex::parse("(a c* d) | b", alphabet);
    pfa::DistributionSpec spec;
    const auto a = alphabet.at("a"), b = alphabet.at("b"),
               c = alphabet.at("c"), d = alphabet.at("d");
    spec.set_bigram_weight(pfa::DistributionSpec::kStartContext, a, 0.6);
    spec.set_bigram_weight(pfa::DistributionSpec::kStartContext, b, 0.4);
    spec.set_bigram_weight(a, c, 0.3);
    spec.set_bigram_weight(a, d, 0.7);
    spec.set_bigram_weight(c, c, 0.3);
    spec.set_bigram_weight(c, d, 0.7);
    return pfa::Pfa::from_regex(re, spec, alphabet, {.minimize = true});
  }
};

void print_table() {
  Fig3 f;
  support::Rng rng(2009);
  constexpr int kTrials = 200000;
  std::map<std::string, int> counts;
  pfa::WalkOptions options;
  options.size = 64;
  for (int i = 0; i < kTrials; ++i) {
    counts[f.alphabet.render(f.pfa.sample(rng, options).symbols)]++;
  }
  std::printf("=== Fig. 3 PFA for (ac*d)|b — P(q0,a)=0.6 P(q0,b)=0.4 "
              "P(q1,c)=0.3 P(q1,d)=0.7 ===\n");
  std::printf("%-12s | %-10s | %-10s\n", "word", "closed-form", "empirical");
  const auto row = [&](std::vector<pfa::SymbolId> word) {
    std::printf("%-12s | %10.4f | %10.4f\n",
                f.alphabet.render(word).c_str(),
                f.pfa.word_probability(word),
                counts[f.alphabet.render(word)] / double(kTrials));
  };
  const auto a = f.alphabet.at("a"), b = f.alphabet.at("b"),
             c = f.alphabet.at("c"), d = f.alphabet.at("d");
  row({b});
  row({a, d});
  row({a, c, d});
  row({a, c, c, d});
  row({a, c, c, c, d});
  std::printf("states: %zu (matches the paper's 3-state drawing)\n\n",
              f.pfa.states().size());
}

const int registered = [] {
  bench::register_report("fig3_pfa", print_table);

  bench::register_benchmark("fig3_pfa/sample", [](bench::Context& ctx) {
    Fig3 f;
    support::Rng rng(1);
    pfa::WalkOptions options;
    options.size = 64;
    ctx.measure([&] { bench::do_not_optimize(f.pfa.sample(rng, options)); });
  });

  bench::register_benchmark(
      "fig3_pfa/word_probability", [](bench::Context& ctx) {
        Fig3 f;
        const std::vector<pfa::SymbolId> word{f.alphabet.at("a"),
                                              f.alphabet.at("c"),
                                              f.alphabet.at("d")};
        ctx.measure(
            [&] { bench::do_not_optimize(f.pfa.word_probability(word)); });
      });
  return 0;
}();

}  // namespace
