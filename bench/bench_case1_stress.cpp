// Paper case study 1: stress testing pCore with 16 quicksort tasks under
// create/delete churn against the latent GC defect.
// Regenerates: detection rate and commands/ticks-to-detection for pTest's
// churn stress, vs. a gentle functional-style configuration (sequential
// merge, no churn) with the same command budget — the paper's point that
// only sustained stress exposes the GC failure.
#include <cstdio>

#include "harness.hpp"
#include "ptest/core/adaptive_test.hpp"
#include "ptest/workload/quicksort.hpp"

namespace {

using namespace ptest;

const char* kFig5 =
    "TC -> TCH = 0.6; TC -> TS = 0.2; TC -> TD = 0.1; TC -> TY = 0.1;"
    "TCH -> TCH = 0.6; TCH -> TS = 0.2; TCH -> TD = 0.1; TCH -> TY = 0.1;"
    "TS -> TR = 1.0;"
    "TR -> TCH = 0.4; TR -> TS = 0.3; TR -> TY = 0.2; TR -> TD = 0.1";

core::PtestConfig stress_config() {
  core::PtestConfig config;
  config.distributions = kFig5;
  config.n = 16;
  config.s = 24;
  config.restart_at_accept = true;
  config.program_id = workload::kQuicksortProgramId;
  config.kernel.fault_plan.gc_corruption = true;
  config.kernel.fault_plan.churn_threshold = 24;
  config.kernel.fault_plan.live_block_threshold = 20;
  config.max_ticks = 500000;
  return config;
}

struct Row {
  int runs = 0;
  int detected = 0;
  std::uint64_t ticks_sum = 0;
  std::size_t commands_sum = 0;
};

Row evaluate(core::PtestConfig config, int seeds) {
  Row row;
  pfa::Alphabet alphabet;
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(seeds);
       ++seed) {
    config.seed = seed;
    const auto result =
        core::adaptive_test(config, alphabet, workload::register_quicksort);
    ++row.runs;
    if (result.session.outcome == core::Outcome::kBug &&
        result.session.report->kind == core::BugKind::kSlaveCrash) {
      ++row.detected;
      row.ticks_sum += result.session.stats.ticks;
      row.commands_sum += result.session.stats.commands_issued;
    }
  }
  return row;
}

void print_table() {
  constexpr int kSeeds = 12;
  std::printf("=== Case study 1: GC-crash discovery (16 quicksort tasks, "
              "%d seeds) ===\n", kSeeds);
  std::printf("%-28s | %-9s | %-16s | %-14s\n", "configuration", "detected",
              "mean cmds to bug", "mean ticks");

  const auto report = [](const char* name, const Row& row) {
    std::printf("%-28s | %4d/%-4d | %16.1f | %14.1f\n", name, row.detected,
                row.runs,
                row.detected ? double(row.commands_sum) / row.detected : 0.0,
                row.detected ? double(row.ticks_sum) / row.detected : 0.0);
  };

  report("pTest stress (churn, n=16)", evaluate(stress_config(), kSeeds));

  core::PtestConfig gentle = stress_config();
  gentle.restart_at_accept = false;  // single lifecycles, no churn
  gentle.n = 4;                      // light concurrency
  gentle.s = 8;
  gentle.op = pattern::MergeOp::kSequential;
  report("functional (sequential, n=4)", evaluate(gentle, kSeeds));

  core::PtestConfig no_fault = stress_config();
  no_fault.kernel.fault_plan.gc_corruption = false;
  report("stress, healthy kernel", evaluate(no_fault, kSeeds));
  std::printf("\n");
}

const int registered = [] {
  bench::register_report("case1_stress", print_table);

  bench::register_benchmark(
      "case1_stress/run_to_verdict", [](bench::Context& ctx) {
        core::PtestConfig config = stress_config();
        if (ctx.smoke()) {
          config.n = 4;
          config.s = 8;
          config.max_ticks = 50000;
        }
        std::uint64_t seed = 1;
        pfa::Alphabet alphabet;
        ctx.measure([&] {
          config.seed = seed++;
          bench::do_not_optimize(core::adaptive_test(
              config, alphabet, workload::register_quicksort));
        });
      });
  return 0;
}();

}  // namespace
