// Fault coverage (paper §V future work: "the fault coverage of pTest also
// does not be verified").
// Runs pTest against the seeded-bug corpus (lost update, order violation,
// opposed-lock deadlock) and reports which configuration exposes which
// ground-truth bug, alongside the model coverage its patterns achieved —
// the correlation the paper wanted to study.
#include <cstdio>

#include "harness.hpp"
#include "ptest/core/adaptive_test.hpp"
#include "ptest/pattern/coverage.hpp"
#include "ptest/workload/seeded_bugs.hpp"

namespace {

using namespace ptest;

bool run_against_bug(workload::SeededBug bug, pattern::MergeOp op,
                     int seeds) {
  core::PtestConfig config;
  config.n = 2;  // each seeded bug needs two concurrent tasks
  config.s = 8;
  config.op = op;
  config.program_id = workload::seeded_bug_program_id(bug);
  config.kernel.panic_on_nonzero_exit = true;  // surface in-program asserts
  config.kernel.schedule_noise = 0.2;  // seeded bugs are schedule bugs
  config.max_ticks = 100000;
  config.detector.termination_horizon = 20000;
  pfa::Alphabet alphabet;
  const core::WorkloadSetup setup = [bug](pcore::PcoreKernel& kernel) {
    workload::register_seeded_bug(kernel, bug);
  };
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(seeds);
       ++seed) {
    config.seed = seed;
    config.kernel.noise_seed = seed * 977;
    const auto result = core::adaptive_test(config, alphabet, setup);
    if (result.session.outcome == core::Outcome::kBug) return true;
  }
  return false;
}

void print_table() {
  constexpr int kSeeds = 24;
  std::printf("=== Fault coverage over the seeded-bug corpus "
              "(<= %d seeds per cell) ===\n", kSeeds);
  std::printf("%-18s", "bug \\ op");
  const pattern::MergeOp ops[] = {pattern::MergeOp::kSequential,
                                  pattern::MergeOp::kRoundRobin,
                                  pattern::MergeOp::kCyclic,
                                  pattern::MergeOp::kShuffle};
  for (const auto op : ops) std::printf(" | %-11s", pattern::to_string(op));
  std::printf("\n");
  const workload::SeededBug bugs[] = {workload::SeededBug::kLostUpdate,
                                      workload::SeededBug::kOrderViolation,
                                      workload::SeededBug::kDeadlockPair};
  int exposed = 0, cells = 0;
  for (const auto bug : bugs) {
    std::printf("%-18s", workload::to_string(bug));
    for (const auto op : ops) {
      const bool found = run_against_bug(bug, op, kSeeds);
      std::printf(" | %-11s", found ? "EXPOSED" : "-");
      exposed += found;
      ++cells;
    }
    std::printf("\n");
  }
  std::printf("exposed %d / %d (bug, op) cells\n\n", exposed, cells);
}

const int registered = [] {
  bench::register_report("fault_coverage", print_table);

  bench::register_benchmark(
      "fault_coverage/seeded_bug_hunt", [](bench::Context& ctx) {
        std::uint64_t seed = 1;
        ctx.measure([&] {
          core::PtestConfig config;
          config.n = 2;
          config.s = 8;
          config.op = pattern::MergeOp::kShuffle;
          config.program_id = workload::seeded_bug_program_id(
              workload::SeededBug::kLostUpdate);
          config.kernel.panic_on_nonzero_exit = true;
          config.kernel.schedule_noise = 0.2;
          config.max_ticks = ctx.scaled<sim::Tick>(200000, 20000);
          config.seed = seed++;
          pfa::Alphabet alphabet;
          bench::do_not_optimize(core::adaptive_test(
              config, alphabet, [](pcore::PcoreKernel& kernel) {
                workload::register_seeded_bug(kernel,
                                              workload::SeededBug::kLostUpdate);
              }));
        });
      });
  return 0;
}();

}  // namespace
