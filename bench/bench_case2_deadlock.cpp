// Paper case study 2: deadlock discovery in the buggy dining-philosophers
// program (3 tasks, 3 mutually exclusive resources).
// Regenerates the paper's claim that the merger's `op` targets the bug
// class: detection probability and commands-to-detection per merge
// operator, buggy vs. fixed acquisition order.
#include <cstdio>

#include "harness.hpp"
#include "ptest/core/adaptive_test.hpp"
#include "ptest/workload/philosophers.hpp"

namespace {

using namespace ptest;

const char* kFig5 =
    "TC -> TCH = 0.6; TC -> TS = 0.2; TC -> TD = 0.1; TC -> TY = 0.1;"
    "TCH -> TCH = 0.6; TCH -> TS = 0.2; TCH -> TD = 0.1; TCH -> TY = 0.1;"
    "TS -> TR = 1.0;"
    "TR -> TCH = 0.4; TR -> TS = 0.3; TR -> TY = 0.2; TR -> TD = 0.1";

core::PtestConfig base_config() {
  core::PtestConfig config;
  config.distributions = kFig5;
  config.n = 3;
  config.s = 10;
  config.program_id = workload::kPhilosopherProgramId;
  config.max_ticks = 100000;
  config.command_spacing = 12;
  return config;
}

struct Row {
  int runs = 0;
  int deadlocks = 0;
  std::size_t commands_sum = 0;
};

Row evaluate(pattern::MergeOp op, bool buggy, int seeds) {
  Row row;
  core::PtestConfig config = base_config();
  config.op = op;
  pfa::Alphabet alphabet;
  const core::WorkloadSetup setup = [buggy](pcore::PcoreKernel& kernel) {
    (void)workload::register_philosophers(kernel, buggy, /*meals=*/500);
  };
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(seeds);
       ++seed) {
    config.seed = seed;
    const auto result = core::adaptive_test(config, alphabet, setup);
    ++row.runs;
    if (result.session.outcome == core::Outcome::kBug &&
        result.session.report->kind == core::BugKind::kDeadlock) {
      ++row.deadlocks;
      row.commands_sum += result.session.stats.commands_issued;
    }
  }
  return row;
}

void print_table() {
  constexpr int kSeeds = 40;
  std::printf("=== Case study 2: philosopher deadlock detection "
              "(%d seeds per cell) ===\n", kSeeds);
  std::printf("%-12s | %-18s | %-18s\n", "merge op", "buggy: P(detect)",
              "fixed: P(detect)");
  for (const pattern::MergeOp op :
       {pattern::MergeOp::kSequential, pattern::MergeOp::kRoundRobin,
        pattern::MergeOp::kRandom, pattern::MergeOp::kShuffle,
        pattern::MergeOp::kCyclic}) {
    const Row buggy = evaluate(op, true, kSeeds);
    const Row fixed = evaluate(op, false, kSeeds);
    std::printf("%-12s | %5.1f%% (avg %4.0f c) | %5.1f%%\n",
                pattern::to_string(op),
                100.0 * buggy.deadlocks / buggy.runs,
                buggy.deadlocks ? double(buggy.commands_sum) / buggy.deadlocks
                                : 0.0,
                100.0 * fixed.deadlocks / fixed.runs);
  }
  std::printf("(expected shape: rotation ops (round-robin, cyclic) dominate\n"
              "unstructured randomness; sequential and the fixed variant are "
              "0%%)\n\n");
}

const int registered = [] {
  bench::register_report("case2_deadlock", print_table);

  bench::register_benchmark(
      "case2_deadlock/cyclic_hunt", [](bench::Context& ctx) {
        core::PtestConfig config = base_config();
        config.op = pattern::MergeOp::kCyclic;
        config.max_ticks = ctx.scaled<sim::Tick>(100000, 20000);
        pfa::Alphabet alphabet;
        const core::WorkloadSetup setup = [](pcore::PcoreKernel& kernel) {
          (void)workload::register_philosophers(kernel, true, /*meals=*/500);
        };
        std::uint64_t seed = 1;
        ctx.measure([&] {
          config.seed = seed++;
          bench::do_not_optimize(core::adaptive_test(config, alphabet, setup));
        });
      });
  return 0;
}();

}  // namespace
