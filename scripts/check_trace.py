#!/usr/bin/env python3
"""Validate a stitched Chrome trace produced by `ptest_cli --trace`.

Usage:
    check_trace.py TRACE.json [--expect-workers N] [--allow-drops]

Checks, in order:

  * the document parses and has a `traceEvents` list plus the
    `otherData` accounting block the stitcher always writes;
  * every event carries the required fields for its phase — `ph` is one
    of X (complete span), i/I (instant), M (metadata); spans have a
    non-negative `dur`; every non-metadata event has numeric `ts >= 0`,
    `pid`, and `tid`;
  * timestamps are monotonic per (pid, tid) lane in document order —
    the stitcher emits each lane's events start-sorted, so a
    backwards-jumping `ts` means a broken fragment rebase;
  * with --expect-workers N: at least N worker lanes (pid != 0) exist,
    each with a `compile` span and at least one `session` span, and the
    coordinator lane (pid 0) carries the `fleet:issue` / `fleet:ack`
    instants and a `corpus-merge` span — i.e. the cross-host timeline
    actually stitched, rather than degenerating to one process;
  * `otherData.dropped_events` is 0 unless --allow-drops: at smoke
    scale the rings must not wrap, so a drop means the ring is sized
    wrong or a drain was missed.

Exit 0 when everything holds, 1 on a validation failure, 2 when the
file cannot be read or parsed at all.
"""

import argparse
import json
import sys

VALID_PHASES = {"X", "i", "I", "M"}


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def main():
    parser = argparse.ArgumentParser(
        description="Validate a ptest Chrome trace document.")
    parser.add_argument("trace", help="stitched trace JSON file")
    parser.add_argument("--expect-workers", type=int, default=0,
                        metavar="N",
                        help="require at least N worker lanes (pid != 0), "
                             "each with compile + session spans, plus the "
                             "coordinator's issue/ack/merge events")
    parser.add_argument("--allow-drops", action="store_true",
                        help="tolerate nonzero otherData.dropped_events "
                             "(rings wrapped; fine for long runs, wrong "
                             "at smoke scale)")
    args = parser.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot read {args.trace}: {error}", file=sys.stderr)
        return 2

    events = document.get("traceEvents")
    if not isinstance(events, list):
        return fail("no 'traceEvents' list")
    other = document.get("otherData")
    if not isinstance(other, dict):
        return fail("no 'otherData' accounting block")

    failures = 0
    last_ts = {}           # (pid, tid) -> last seen ts
    names_by_pid = {}      # pid -> set of event names
    process_names = {}     # pid -> process_name metadata value
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            failures += fail(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in VALID_PHASES:
            failures += fail(f"{where}: bad ph {phase!r}")
            continue
        if phase == "M":
            if event.get("name") == "process_name":
                pid = event.get("pid")
                name = event.get("args", {}).get("name")
                process_names[pid] = name
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            failures += fail(f"{where}: missing event name")
        ts = event.get("ts")
        pid = event.get("pid")
        tid = event.get("tid")
        if not isinstance(ts, (int, float)) or ts < 0:
            failures += fail(f"{where} ({name}): bad ts {ts!r}")
            continue
        if not isinstance(pid, (int, float)) or not isinstance(
                tid, (int, float)):
            failures += fail(f"{where} ({name}): missing pid/tid")
            continue
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                failures += fail(f"{where} ({name}): bad dur {dur!r}")
        lane = (pid, tid)
        if lane in last_ts and ts < last_ts[lane]:
            failures += fail(
                f"{where} ({name}): ts {ts} jumps backwards in lane "
                f"pid={pid} tid={tid} (previous {last_ts[lane]})")
        last_ts[lane] = ts
        names_by_pid.setdefault(pid, set()).add(name)

    dropped = other.get("dropped_events", 0)
    if dropped and not args.allow_drops:
        failures += fail(f"otherData.dropped_events = {dropped} "
                         "(rings wrapped; pass --allow-drops if expected)")
    malformed = other.get("malformed_fragments", 0)
    if malformed:
        failures += fail(f"otherData.malformed_fragments = {malformed}")

    if args.expect_workers > 0:
        worker_pids = sorted(p for p in names_by_pid if p != 0)
        if len(worker_pids) < args.expect_workers:
            failures += fail(
                f"expected >= {args.expect_workers} worker lanes, "
                f"found {len(worker_pids)}: {worker_pids}")
        for pid in worker_pids:
            names = names_by_pid[pid]
            for required in ("compile", "session"):
                if required not in names:
                    failures += fail(
                        f"worker lane pid={pid} "
                        f"({process_names.get(pid, '?')}) has no "
                        f"'{required}' span")
        coordinator = names_by_pid.get(0, set())
        for required in ("fleet:issue", "fleet:ack", "corpus-merge"):
            if required not in coordinator:
                failures += fail(
                    f"coordinator lane (pid=0) has no '{required}' event")

    print(f"{args.trace}: {len(events)} events, "
          f"{len(names_by_pid)} process lane(s), {len(last_ts)} thread "
          f"lane(s), dropped={dropped}, malformed={malformed}"
          + (f", workers={sorted(p for p in names_by_pid if p != 0)}"
             if args.expect_workers else ""))
    if failures:
        print(f"trace check: {failures} failure(s)", file=sys.stderr)
        return 1
    print("trace check: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
