#!/usr/bin/env python3
"""Compare two BENCH_results.json files and flag perf regressions.

Usage:
    check_bench_regression.py BASELINE CURRENT [--threshold 0.15]
                              [--metric median] [--counter NAME]...
                              [--counters-only]
                              [--variance-report FILE]
                              [--variance FILE [--variance-margin 4.0]]

A benchmark present in both files regresses when

    current_wall_ms[metric] > baseline_wall_ms[metric] * (1 + threshold)

--counter NAME (repeatable) additionally compares the named benchmark
counter wherever both files carry it, with the same higher-is-worse
threshold rule.  This is how the guided-campaign effectiveness gate
works: bench_guided attaches guided_sessions_to_first_bug_median as a
counter, so a change that makes guidance need more sessions to reach an
oracle shows up here even if wall time is unchanged.  Counters are
work-class metrics (deterministic given the bench seeds), so unlike
wall times they are stable across runner generations.

Benchmarks only in the baseline (removed) or only in the current file
(new) are reported but never count as regressions.  Exit code 0 when no
regression was found, 1 otherwise, 2 on malformed input.

CI runs this as a *non-blocking* step against the committed baseline
(bench/BENCH_baseline.json): absolute times differ across runner
generations, so a red result is a prompt to look at the uploaded
artifact, not an automatic gate.  Comparing a file against itself
always reports zero regressions — the harness emits each benchmark's
stats once, so identical inputs produce ratio 1.0 everywhere.

--counters-only drops the wall_ms comparison entirely and judges only
the named counters.  That mode IS safe to block on: the gated counters
(fleet_sessions_total, fleet_uncovered_transitions, the guided
sessions-to-first-bug medians) are deterministic work counts, identical
on every healthy runner, so a drift there is a behavior change — and CI
runs it as a blocking step alongside the non-blocking wall comparison.

--variance-report FILE treats the two inputs as REPEAT RUNS of the
same build (CI runs bench_all --smoke twice) and writes a JSON summary
of the inter-run wall-time spread per benchmark plus aggregate
percentiles.  The report always exits 0 — it does not judge anything;
it calibrates.  The recorded spread is what a human (or a future
threshold bump) should read before trusting any wall-ms delta on that
runner class: a 10%% "regression" means nothing on a runner whose
repeat-run p95 spread is 12%%.

--variance FILE closes that loop mechanically: FILE is a report written
by --variance-report, and each benchmark's wall-ms threshold becomes

    max(--threshold, --variance-margin * rel_spread[benchmark])

so a benchmark that measurably wobbles 8%% between repeat runs of one
build is only flagged past 4x that wobble (with the default margin),
while steady benchmarks keep the tight global threshold.  Counters are
never widened — they are deterministic and any drift is real.
"""

import argparse
import json
import sys


def load_benchmarks(path):
    # Exit 2 (not 1) on malformed input so a broken baseline is never
    # mistaken for "regression found" by a blocking caller.
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        raise SystemExit(2)
    benchmarks = document.get("benchmarks")
    if not isinstance(benchmarks, dict):
        print(f"error: {path} has no 'benchmarks' object", file=sys.stderr)
        raise SystemExit(2)
    return document, benchmarks


def metric_value(entry, metric):
    wall = entry.get("wall_ms", {})
    value = wall.get(metric)
    if not isinstance(value, (int, float)):
        return None
    return float(value)


def percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    index = (len(sorted_values) - 1) * q
    lower = int(index)
    upper = min(lower + 1, len(sorted_values) - 1)
    fraction = index - lower
    return sorted_values[lower] * (1 - fraction) + sorted_values[upper] * fraction


def write_variance_report(path, metric, run_a, run_b, doc_a, doc_b):
    """Summarize the wall-time spread between two repeat runs as JSON."""
    rows = {}
    spreads = []
    for name in sorted(set(run_a) & set(run_b)):
        a = metric_value(run_a[name], metric)
        b = metric_value(run_b[name], metric)
        if a is None or b is None or a <= 0.0 or b <= 0.0:
            continue
        # Symmetric relative spread: |a-b| over the run mean, so neither
        # run is privileged as "the" baseline.
        spread = abs(a - b) / ((a + b) / 2.0)
        rows[name] = {
            "run1_ms": a,
            "run2_ms": b,
            "rel_spread": spread,
        }
        spreads.append(spread)
    spreads.sort()
    report = {
        "metric": f"wall_ms.{metric}",
        "git_sha": doc_a.get("git_sha", "?"),
        "smoke": doc_a.get("smoke", "?"),
        "benchmarks_compared": len(rows),
        "rel_spread_median": percentile(spreads, 0.5),
        "rel_spread_p95": percentile(spreads, 0.95),
        "rel_spread_max": spreads[-1] if spreads else 0.0,
        "benchmarks": rows,
    }
    # Flag a mismatched pairing loudly but still record it: a variance
    # number from two different builds would silently mislead.
    if doc_a.get("git_sha") != doc_b.get("git_sha"):
        report["warning"] = (
            "runs come from different git_sha values "
            f"({doc_a.get('git_sha', '?')} vs {doc_b.get('git_sha', '?')}); "
            "this is build drift, not runner variance")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"variance report: {len(rows)} benchmarks, "
          f"median spread {report['rel_spread_median']:.1%}, "
          f"p95 {report['rel_spread_p95']:.1%}, "
          f"max {report['rel_spread_max']:.1%} -> {path}")


def main():
    parser = argparse.ArgumentParser(
        description="Flag benchmark regressions between two "
                    "BENCH_results.json files.")
    parser.add_argument("baseline", help="baseline BENCH_results.json")
    parser.add_argument("current", help="current BENCH_results.json")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed relative slowdown before a benchmark "
                             "counts as regressed (default: 0.15 = 15%%)")
    parser.add_argument("--metric", default="median",
                        choices=["median", "p95", "min", "mean", "max"],
                        help="wall_ms statistic to compare (default: median)")
    parser.add_argument("--counter", action="append", default=[],
                        metavar="NAME",
                        help="also compare this benchmark counter wherever "
                             "both files carry it (repeatable; higher is "
                             "worse, same threshold)")
    parser.add_argument("--counters-only", action="store_true",
                        help="skip the wall_ms comparison and judge only "
                             "the --counter values; counters are "
                             "deterministic work counts, so this mode is "
                             "safe to run as a blocking CI gate where wall "
                             "times are not")
    parser.add_argument("--variance-report", metavar="FILE",
                        help="treat the two inputs as repeat runs of one "
                             "build: write a JSON summary of the inter-run "
                             "wall-time spread to FILE and exit 0 (no "
                             "regression judgment)")
    parser.add_argument("--variance", metavar="FILE",
                        help="a report previously written by "
                             "--variance-report; widens each benchmark's "
                             "wall threshold to at least --variance-margin "
                             "times its measured repeat-run spread")
    parser.add_argument("--variance-margin", type=float, default=4.0,
                        help="multiplier on a benchmark's rel_spread when "
                             "--variance is given (default: 4.0)")
    args = parser.parse_args()
    if args.counters_only and not args.counter:
        parser.error("--counters-only requires at least one --counter")
    if args.variance_margin <= 0:
        parser.error("--variance-margin must be positive")

    spread_by_bench = {}
    if args.variance:
        try:
            with open(args.variance, "r", encoding="utf-8") as handle:
                variance_doc = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"error: cannot read {args.variance}: {error}",
                  file=sys.stderr)
            raise SystemExit(2)
        rows = variance_doc.get("benchmarks")
        if not isinstance(rows, dict):
            print(f"error: {args.variance} has no 'benchmarks' object "
                  "(not a --variance-report output?)", file=sys.stderr)
            raise SystemExit(2)
        for name, row in rows.items():
            spread = row.get("rel_spread")
            if isinstance(spread, (int, float)) and spread >= 0:
                spread_by_bench[name] = float(spread)

    base_doc, base = load_benchmarks(args.baseline)
    cur_doc, cur = load_benchmarks(args.current)

    if args.variance_report:
        write_variance_report(args.variance_report, args.metric, base, cur,
                              base_doc, cur_doc)
        return 0

    print(f"baseline: {args.baseline} (git {base_doc.get('git_sha', '?')}, "
          f"smoke={base_doc.get('smoke', '?')})")
    print(f"current:  {args.current} (git {cur_doc.get('git_sha', '?')}, "
          f"smoke={cur_doc.get('smoke', '?')})")
    if args.counters_only:
        print(f"metric: counters only ({', '.join(args.counter)}), "
              f"threshold: +{args.threshold:.0%}\n")
    elif spread_by_bench:
        print(f"metric: wall_ms.{args.metric}, threshold: "
              f"max(+{args.threshold:.0%}, {args.variance_margin:g} x "
              f"per-bench spread from {args.variance})\n")
    else:
        print(f"metric: wall_ms.{args.metric}, "
              f"threshold: +{args.threshold:.0%}\n")

    def wall_threshold(name):
        # A bench with measured repeat-run wobble gets a proportionally
        # wider gate; the tight global threshold is the floor.
        return max(args.threshold,
                   args.variance_margin * spread_by_bench.get(name, 0.0))

    regressions = []
    improvements = []
    skipped = []
    common = sorted(set(base) & set(cur))
    if not args.counters_only:
        for name in common:
            base_value = metric_value(base[name], args.metric)
            cur_value = metric_value(cur[name], args.metric)
            if base_value is None or cur_value is None or base_value <= 0.0:
                skipped.append(name)
                continue
            ratio = cur_value / base_value
            threshold = wall_threshold(name)
            if ratio > 1.0 + threshold:
                regressions.append((name, base_value, cur_value, ratio))
            elif ratio < 1.0 - threshold:
                improvements.append((name, base_value, cur_value, ratio))

    def counter_value(entry, counter):
        value = entry.get("counters", {}).get(counter)
        return float(value) if isinstance(value, (int, float)) else None

    for counter in args.counter:
        for name in common:
            base_value = counter_value(base[name], counter)
            cur_value = counter_value(cur[name], counter)
            if base_value is None or cur_value is None or base_value <= 0.0:
                continue
            label = f"{name}#{counter}"
            ratio = cur_value / base_value
            if ratio > 1.0 + args.threshold:
                regressions.append((label, base_value, cur_value, ratio))
            elif ratio < 1.0 - args.threshold:
                improvements.append((label, base_value, cur_value, ratio))

    def show(rows, label):
        # Counter rows (name#counter) are unitless; plain rows are ms.
        print(f"{label} ({len(rows)}):")
        for name, base_value, cur_value, ratio in rows:
            unit = "" if "#" in name else " ms"
            print(f"  {name}: {base_value:.4f}{unit} -> {cur_value:.4f}{unit} "
                  f"({ratio:.2f}x)")

    show(regressions, "regressions")
    show(improvements, "improvements")
    if skipped:
        print(f"skipped (missing/zero {args.metric}): {len(skipped)}")
    removed = sorted(set(base) - set(cur))
    added = sorted(set(cur) - set(base))
    if removed:
        print(f"removed benchmarks ({len(removed)}): {', '.join(removed)}")
    if added:
        print(f"new benchmarks ({len(added)}): {', '.join(added)}")

    print(f"\n{len(common)} compared, {len(regressions)} regression(s), "
          f"{len(improvements)} improvement(s)")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
