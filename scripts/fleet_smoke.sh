#!/usr/bin/env bash
# Fleet smoke gate: for every scenario in the catalog, run a 2-worker
# file-queue fleet (two `ptest_cli --serve` processes plus a
# `--connect` coordinator sharing a spool directory) at a small budget,
# and diff the merged corpus the coordinator exports against the corpus
# of a plain single-process run of the same scenario and budget.  The
# fleet invariant says the two files must be byte-identical; any
# difference fails the script.
#
#   scripts/fleet_smoke.sh BUILD_DIR [BUDGET]
#
# BUDGET defaults to 8 sessions per scenario — enough for every oracle
# check ptest_cli performs to be exercised while keeping the whole
# catalog sweep CI-fast.  Exit codes from the fleet runs themselves are
# respected per scenario: buggy scenarios must satisfy their oracle
# (exit 0), and a 64 from either side is a wiring bug.
set -euo pipefail

build_dir="${1:?usage: fleet_smoke.sh BUILD_DIR [BUDGET]}"
budget="${2:-8}"
cli="${build_dir}/examples/ptest_cli"
[ -x "$cli" ] || { echo "error: $cli not built" >&2; exit 2; }

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# The plain-text catalog listing: first column of every row after the
# header line.
scenarios="$("$cli" --list-scenarios | awk 'NR > 1 { print $1 }')"
[ -n "$scenarios" ] || { echo "error: empty scenario catalog" >&2; exit 2; }

failed=0
for scenario in $scenarios; do
  spool="$workdir/spool-$scenario"
  serial_corpus="$workdir/$scenario-serial.json"
  fleet_corpus="$workdir/$scenario-fleet.json"

  # Single-process reference (its corpus is the whole budget as one
  # span — exactly what the fleet must merge back to).  2 = oracle not
  # satisfied at this tiny budget, which is legitimate; anything else
  # nonzero is a wiring failure.  The fleet run must agree either way.
  serial_code=0
  "$cli" --scenario "$scenario" --runs "$budget" \
         --export-corpus "$serial_corpus" \
         > "$workdir/$scenario-serial.out" 2>&1 || serial_code=$?
  if [ "$serial_code" -ne 0 ] && [ "$serial_code" -ne 2 ]; then
    echo "FAIL $scenario: serial run exited $serial_code" >&2
    cat "$workdir/$scenario-serial.out" >&2
    failed=1
    continue
  fi

  # Two worker processes and the coordinator over one spool.
  "$cli" --serve "$spool" > "$workdir/$scenario-w0.out" 2>&1 &
  w0=$!
  "$cli" --serve "$spool" > "$workdir/$scenario-w1.out" 2>&1 &
  w1=$!
  fleet_code=0
  "$cli" --scenario "$scenario" --runs "$budget" --connect "$spool" \
         --fleet 2 --export-corpus "$fleet_corpus" \
         > "$workdir/$scenario-fleet.out" 2>&1 || fleet_code=$?
  wait "$w0" || { echo "FAIL $scenario: worker 0 died" >&2; failed=1; }
  wait "$w1" || { echo "FAIL $scenario: worker 1 died" >&2; failed=1; }

  if [ "$fleet_code" -ne "$serial_code" ]; then
    echo "FAIL $scenario: serial exit $serial_code vs fleet exit $fleet_code" >&2
    cat "$workdir/$scenario-fleet.out" >&2
    failed=1
    continue
  fi
  if ! cmp -s "$serial_corpus" "$fleet_corpus"; then
    echo "FAIL $scenario: merged fleet corpus differs from single-process" >&2
    diff "$serial_corpus" "$fleet_corpus" >&2 || true
    failed=1
    continue
  fi
  echo "ok $scenario (exit $serial_code, corpus identical)"
done

if [ "$failed" -ne 0 ]; then
  echo "fleet smoke: FAILED" >&2
  exit 1
fi
echo "fleet smoke: all scenarios bit-identical"
