#!/usr/bin/env bash
# Fleet smoke gate, both cross-process transports:
#
#   Leg 1 (file queue): for every scenario in the catalog, run a
#   2-worker file-queue fleet (two `ptest_cli --serve` processes plus a
#   `--connect DIR` coordinator sharing a spool directory) at a small
#   budget, and diff the merged corpus the coordinator exports against
#   the corpus of a plain single-process run of the same scenario and
#   budget.
#
#   Leg 2 (sockets): start two persistent `ptest_cli --listen 0` worker
#   daemons ONCE, then run the whole catalog through them — one
#   `--connect host:port,host:port` coordinator per scenario — and diff
#   each export against the file-queue leg's export.  The same two
#   daemon processes serving every campaign is the persistence claim;
#   the final `--halt-fleet` shuts them down and they must exit 0.
#
# The fleet invariant says all exports must be byte-identical; any
# difference fails the script.
#
#   Leg 3 (trace): one scenario re-runs through the same persistent
#   socket daemons with `--trace`, and scripts/check_trace.py validates
#   the stitched Chrome trace — both worker lanes present with their
#   compile/session spans, the coordinator lane carrying issue/ack/
#   merge, monotonic timestamps, and zero dropped events (the rings
#   must not wrap at smoke scale).
#
#   scripts/fleet_smoke.sh BUILD_DIR [BUDGET] [TRACE_OUT]
#
# BUDGET defaults to 8 sessions per scenario — enough for every oracle
# check ptest_cli performs to be exercised while keeping the whole
# catalog sweep CI-fast.  Exit codes from the fleet runs themselves are
# respected per scenario: buggy scenarios must satisfy their oracle
# (exit 0), and a 64 from either side is a wiring bug.  TRACE_OUT names
# where the leg-3 trace lands (CI uploads it as an artifact); default
# is inside the throwaway workdir.
set -euo pipefail

build_dir="${1:?usage: fleet_smoke.sh BUILD_DIR [BUDGET] [TRACE_OUT]}"
budget="${2:-8}"
trace_out="${3:-}"
cli="${build_dir}/examples/ptest_cli"
script_dir="$(cd "$(dirname "$0")" && pwd)"
[ -x "$cli" ] || { echo "error: $cli not built" >&2; exit 2; }

workdir="$(mktemp -d)"
daemon0_pid=""
daemon1_pid=""
cleanup() {
  # Belt and braces: the daemons normally exit via --halt-fleet below.
  [ -n "$daemon0_pid" ] && kill "$daemon0_pid" 2>/dev/null || true
  [ -n "$daemon1_pid" ] && kill "$daemon1_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

# The plain-text catalog listing: first column of every row after the
# header line.
scenarios="$("$cli" --list-scenarios | awk 'NR > 1 { print $1 }')"
[ -n "$scenarios" ] || { echo "error: empty scenario catalog" >&2; exit 2; }

# --- socket daemons: started once, serving the entire sweep ----------------
"$cli" --listen 0 > "$workdir/daemon0.out" 2>&1 &
daemon0_pid=$!
"$cli" --listen 0 > "$workdir/daemon1.out" 2>&1 &
daemon1_pid=$!
# Each daemon prints "listening on port N" before serving.
port_of() {
  local out="$1" port="" i
  for i in $(seq 1 100); do
    port="$(awk '/^listening on port / { print $4; exit }' "$out" 2>/dev/null)"
    [ -n "$port" ] && break
    sleep 0.1
  done
  [ -n "$port" ] || { echo "error: no port in $out" >&2; exit 2; }
  echo "$port"
}
port0="$(port_of "$workdir/daemon0.out")"
port1="$(port_of "$workdir/daemon1.out")"
endpoints="localhost:$port0,localhost:$port1"
echo "socket daemons up on ports $port0, $port1"

failed=0
for scenario in $scenarios; do
  spool="$workdir/spool-$scenario"
  serial_corpus="$workdir/$scenario-serial.json"
  fleet_corpus="$workdir/$scenario-fleet.json"
  socket_corpus="$workdir/$scenario-socket.json"

  # Single-process reference (its corpus is the whole budget as one
  # span — exactly what the fleet must merge back to).  2 = oracle not
  # satisfied at this tiny budget, which is legitimate; anything else
  # nonzero is a wiring failure.  The fleet runs must agree either way.
  serial_code=0
  "$cli" --scenario "$scenario" --runs "$budget" \
         --export-corpus "$serial_corpus" \
         > "$workdir/$scenario-serial.out" 2>&1 || serial_code=$?
  if [ "$serial_code" -ne 0 ] && [ "$serial_code" -ne 2 ]; then
    echo "FAIL $scenario: serial run exited $serial_code" >&2
    cat "$workdir/$scenario-serial.out" >&2
    failed=1
    continue
  fi

  # Leg 1: two worker processes and the coordinator over one spool.
  "$cli" --serve "$spool" > "$workdir/$scenario-w0.out" 2>&1 &
  w0=$!
  "$cli" --serve "$spool" > "$workdir/$scenario-w1.out" 2>&1 &
  w1=$!
  fleet_code=0
  "$cli" --scenario "$scenario" --runs "$budget" --connect "$spool" \
         --fleet 2 --export-corpus "$fleet_corpus" \
         > "$workdir/$scenario-fleet.out" 2>&1 || fleet_code=$?
  wait "$w0" || { echo "FAIL $scenario: worker 0 died" >&2; failed=1; }
  wait "$w1" || { echo "FAIL $scenario: worker 1 died" >&2; failed=1; }

  if [ "$fleet_code" -ne "$serial_code" ]; then
    echo "FAIL $scenario: serial exit $serial_code vs fleet exit $fleet_code" >&2
    cat "$workdir/$scenario-fleet.out" >&2
    failed=1
    continue
  fi
  if ! cmp -s "$serial_corpus" "$fleet_corpus"; then
    echo "FAIL $scenario: merged fleet corpus differs from single-process" >&2
    diff "$serial_corpus" "$fleet_corpus" >&2 || true
    failed=1
    continue
  fi

  # Leg 2: the same campaign through the two persistent socket daemons.
  socket_code=0
  "$cli" --scenario "$scenario" --runs "$budget" --connect "$endpoints" \
         --fleet 2 --export-corpus "$socket_corpus" \
         > "$workdir/$scenario-socket.out" 2>&1 || socket_code=$?
  if [ "$socket_code" -ne "$serial_code" ]; then
    echo "FAIL $scenario: serial exit $serial_code vs socket exit $socket_code" >&2
    cat "$workdir/$scenario-socket.out" >&2
    failed=1
    continue
  fi
  if ! cmp -s "$fleet_corpus" "$socket_corpus"; then
    echo "FAIL $scenario: socket corpus differs from file-queue corpus" >&2
    diff "$fleet_corpus" "$socket_corpus" >&2 || true
    failed=1
    continue
  fi
  echo "ok $scenario (exit $serial_code, file-queue + socket corpora identical)"
done

# --- leg 3: trace one campaign through the same daemons --------------------
# The daemons have already served the whole catalog; the traced run
# proves the observability path works on a long-lived fleet, not just a
# fresh one.  check_trace.py gates the stitched document: both worker
# lanes with compile/session spans, coordinator issue/ack/merge,
# monotonic timestamps, zero drops.
[ -n "$trace_out" ] || trace_out="$workdir/fleet_trace.json"
trace_scenario="$(echo "$scenarios" | head -n 1)"
trace_code=0
"$cli" --scenario "$trace_scenario" --runs "$budget" --connect "$endpoints" \
       --fleet 2 --trace "$trace_out" \
       > "$workdir/trace-run.out" 2>&1 || trace_code=$?
if [ "$trace_code" -ne 0 ] && [ "$trace_code" -ne 2 ]; then
  echo "FAIL: traced run of $trace_scenario exited $trace_code" >&2
  cat "$workdir/trace-run.out" >&2
  failed=1
elif ! python3 "$script_dir/check_trace.py" "$trace_out" --expect-workers 2
then
  echo "FAIL: check_trace.py rejected $trace_out" >&2
  failed=1
else
  echo "ok trace ($trace_scenario through both daemons -> $trace_out)"
fi

# A clean explicit shutdown: the daemons that served the whole catalog
# must exit 0 on the halt broadcast, not be killed.
"$cli" --halt-fleet --connect "$endpoints" || {
  echo "FAIL: --halt-fleet errored" >&2
  failed=1
}
halt_ok=1
wait "$daemon0_pid" || { echo "FAIL: daemon 0 exited nonzero" >&2; halt_ok=0; }
wait "$daemon1_pid" || { echo "FAIL: daemon 1 exited nonzero" >&2; halt_ok=0; }
daemon0_pid=""
daemon1_pid=""
[ "$halt_ok" -eq 1 ] || failed=1

if [ "$failed" -ne 0 ]; then
  echo "fleet smoke: FAILED" >&2
  exit 1
fi
echo "fleet smoke: all scenarios bit-identical over both transports"
